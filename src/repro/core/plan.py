"""Execution-plan IR: the generator's intermediate representation.

The paper's code generator has two stages (§4.1): build the skeleton
(composed coefficients, partition indexing, peeling) and emit the typical
operations (fused packing, specialized micro-kernel updates).  Our analog
lowers a (multi-level algorithm, variant) pair into a flat list of steps —
one :class:`ProductStep` per ``M_r`` plus fringe GEMMs — that both the code
emitter (:mod:`repro.core.codegen`) and tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.kronecker import MultiLevelFMM
from repro.core.peeling import PeelPlan, peel

__all__ = ["ProductStep", "ExecutionPlan", "build_plan"]


@dataclass(frozen=True)
class ProductStep:
    """One product ``M_r`` of eq. (5) with its sparse operand lists.

    ``a_terms``/``b_terms`` hold ``(block_index, coefficient)`` pairs over
    recursive-block operand indices; ``c_terms`` are the W-weighted
    destinations.  The variant dictates whether the sums are fused into
    packing (ab/abc) and whether the update is fused into the kernel (abc).
    """

    r: int
    a_terms: tuple[tuple[int, float], ...]
    b_terms: tuple[tuple[int, float], ...]
    c_terms: tuple[tuple[int, float], ...]


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything needed to execute/emit one generated implementation."""

    ml: MultiLevelFMM
    variant: str
    m: int
    k: int
    n: int
    peel_plan: PeelPlan
    steps: tuple[ProductStep, ...] = field(default_factory=tuple)

    @property
    def rank_total(self) -> int:
        return len(self.steps)

    def operation_counts(self) -> dict[str, int]:
        """Totals used in generator reports: products, adds per operand."""
        a_adds = sum(max(len(s.a_terms) - 1, 0) for s in self.steps)
        b_adds = sum(max(len(s.b_terms) - 1, 0) for s in self.steps)
        c_updates = sum(len(s.c_terms) for s in self.steps)
        return {
            "products": len(self.steps),
            "a_additions": a_adds,
            "b_additions": b_adds,
            "c_updates": c_updates,
            "fringe_gemms": len(self.peel_plan.fringes),
        }


def build_plan(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM,
    variant: str = "abc",
) -> ExecutionPlan:
    """Lower a (shape, algorithm, variant) triple to the step list."""
    if variant not in ("naive", "ab", "abc"):
        raise ValueError(f"unknown variant {variant!r}")
    Mt, Kt, Nt = ml.dims_total
    steps = []
    for r, (ai, ac, bi, bc, ci, cc) in enumerate(ml.columns):
        steps.append(
            ProductStep(
                r=r,
                a_terms=tuple((int(i), float(c)) for i, c in zip(ai, ac)),
                b_terms=tuple((int(i), float(c)) for i, c in zip(bi, bc)),
                c_terms=tuple((int(i), float(c)) for i, c in zip(ci, cc)),
            )
        )
    return ExecutionPlan(
        ml=ml,
        variant=variant,
        m=m, k=k, n=n,
        peel_plan=peel(m, k, n, Mt, Kt, Nt),
        steps=tuple(steps),
    )
