"""Model-guided algorithm selection — the poly-algorithm of §4.4 / Fig. 8.

The generator's performance model is cheap to evaluate, so for a given
problem size/shape we can rank *every* generated implementation (23 shapes
x levels x hybrid pairs x 3 variants — hundreds of candidates) without
running any of them.  Following the paper, the top-2 model picks are then
measured (fringe effects are invisible to the model) and the better one is
chosen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterable, Sequence

from repro.algorithms.catalog import FIG2_SHAPES, get_algorithm
from repro.blis.simulator import simulate_time
from repro.core.kronecker import MultiLevelFMM
from repro.core.spec import Schedule
from repro.model.machines import MachineParams
from repro.model.perfmodel import (
    ModelPrediction,
    effective_gflops,
    predict_fmm,
    predict_gemm,
)

__all__ = [
    "Candidate",
    "enumerate_candidates",
    "hybrid_shapes_for",
    "rank_candidates",
    "select",
    "auto_config",
]

#: Default hybrid building blocks (§5.2 evaluates hybrids of these shapes).
_DEFAULT_HYBRID_SHAPES = ((2, 2, 2), (2, 3, 2), (3, 2, 3), (3, 3, 3))

#: Per-level shapes only offer aspect ratios up to 6/2; clamp the problem
#: skew to the log2 range a single base case can actually absorb.
_MAX_LEVEL_SKEW = math.log2(3.0)


@lru_cache(maxsize=256)
def hybrid_shapes_for(
    m: int, k: int, n: int, extra: int = 4
) -> tuple[tuple[int, int, int], ...]:
    """Hybrid building blocks matched to the problem's aspect ratio.

    The §5.2 default set covers square-ish problems; for skewed problems
    the catalog shapes whose own ``(m~/k~, n~/k~)`` log-ratios best track
    the problem's ``(m/k, n/k)`` are appended (``extra`` of them), so
    mixed-level schedule enumeration can partition a tall-skinny or wide
    problem with matching rectangular bases instead of forcing square
    cuts at every level.

    Degenerate problems (any dimension < 1) have no aspect ratio; they
    fall through to the default set so empty multiplies keep dispatching
    via the classical fallback instead of crashing here.
    """
    if min(m, k, n) < 1:
        return _DEFAULT_HYBRID_SHAPES
    pm = min(max(math.log2(m / k), -_MAX_LEVEL_SKEW), _MAX_LEVEL_SKEW)
    pn = min(max(math.log2(n / k), -_MAX_LEVEL_SKEW), _MAX_LEVEL_SKEW)

    def _misfit(shape: tuple[int, int, int]) -> tuple[float, int]:
        sm, sk, sn = shape
        fit = abs(math.log2(sm / sk) - pm) + abs(math.log2(sn / sk) - pn)
        return (fit, sm * sk * sn)  # prefer smaller shapes on ties

    ranked = sorted(FIG2_SHAPES, key=_misfit)
    merged = dict.fromkeys(_DEFAULT_HYBRID_SHAPES)
    merged.update(dict.fromkeys(ranked[: max(extra, 0)]))
    return tuple(merged)


@dataclass(frozen=True)
class Candidate:
    """One generated implementation: per-level schedule + variant + prediction."""

    shapes: tuple[tuple[int, int, int], ...]
    variant: str
    prediction: ModelPrediction

    @property
    def levels(self) -> int:
        return len(self.shapes)

    @property
    def schedule(self) -> Schedule:
        """The candidate's per-level schedule as a first-class object."""
        return Schedule(self.shapes)

    @property
    def signature(self) -> str:
        """Canonical schedule string, e.g. ``"<2,2,2>@2"`` (wisdom key form)."""
        return self.schedule.signature

    @property
    def fusion(self) -> str:
        """Runtime lowering mode this candidate will compile to.

        The §4.1 variants *are* the lowering modes of the streaming
        runtime: ``naive`` executes staged (every temporary
        materialized), ``ab``/``abc`` execute the fused per-worker
        pipeline once the staged slabs outgrow the cache — and, past
        the configured memory budget, the out-of-core **tiled**
        pipeline whose RAM window
        :func:`repro.model.perfmodel.predict_tile_window_bytes`
        prices.  Resolved with the same rule the plan compiler applies
        (:func:`repro.core.spec.resolve_fusion` over this candidate's
        problem size, schedule and float64 operand-slab footprint), so
        the label always matches what ``compile()`` will actually run.
        """
        from repro.core.spec import (
            operand_slab_bytes,
            resolve_fusion,
            staged_slab_elements,
        )

        p = self.prediction
        ml = self.multilevel()
        return resolve_fusion(
            "auto", self.variant,
            staged_slab_elements(p.m, p.k, p.n, ml),
            operand_slab_bytes(p.m, p.k, p.n, ml),
        )

    @property
    def workspace_bytes(self) -> int:
        """Priced peak RAM workspace of this candidate's lowering.

        Staged/fused candidates price the full in-core arena footprint;
        a candidate that resolves to the ``tiled`` lowering prices only
        its bounded RAM window (everything slab-scale spills to mmap) —
        the same number the serve admission controller charges, so
        ranking by memory and admitting jobs use one model.
        """
        from repro.model.perfmodel import predict_workspace_bytes

        p = self.prediction
        return predict_workspace_bytes(
            p.m, p.k, p.n, self.multilevel(), fusion=self.fusion
        )

    @property
    def label(self) -> str:
        stack = "+".join("<%d,%d,%d>" % s for s in self.shapes)
        return f"{stack}/{self.variant}"

    def multilevel(self) -> MultiLevelFMM:
        return MultiLevelFMM([get_algorithm(s) for s in self.shapes])


def enumerate_candidates(
    m: int,
    k: int,
    n: int,
    machine: MachineParams,
    max_levels: int = 2,
    variants: Sequence[str] = ("naive", "ab", "abc"),
    one_level_shapes: Iterable[tuple[int, int, int]] | None = None,
    hybrid_shapes: Iterable[tuple[int, int, int]] | None = None,
) -> list[Candidate]:
    """Model-evaluate the implementation family for one problem size.

    Level-1 candidates cover every catalog shape; deeper levels cover all
    ordered stacks of the (smaller) hybrid shape set, since 23^L explodes
    while the paper's hybrids combine a handful of small shapes.  The
    hybrid set defaults to :func:`hybrid_shapes_for` — the §5.2 shapes
    plus the catalog shapes best matching the problem's aspect ratio —
    so skewed problems enumerate mixed rectangular schedules.
    """
    shapes1 = tuple(one_level_shapes or FIG2_SHAPES)
    shapes_h = tuple(hybrid_shapes or hybrid_shapes_for(m, k, n))
    stacks: list[tuple[tuple[int, int, int], ...]] = [(s,) for s in shapes1]
    prev: list[tuple[tuple[int, int, int], ...]] = [(s,) for s in shapes_h]
    for _ in range(2, max_levels + 1):
        nxt = [stack + (s,) for stack in prev for s in shapes_h]
        stacks.extend(nxt)
        prev = nxt

    out: list[Candidate] = []
    for stack in stacks:
        ml = MultiLevelFMM([get_algorithm(s) for s in stack])
        Mt, Kt, Nt = ml.dims_total
        if m < Mt or k < Kt or n < Nt:
            continue  # partition coarser than the problem
        for var in variants:
            pred = predict_fmm(m, k, n, ml, var, machine)
            out.append(Candidate(shapes=stack, variant=var, prediction=pred))
    return out


def rank_candidates(candidates: list[Candidate]) -> list[Candidate]:
    """Sort by predicted time, fastest first."""
    return sorted(candidates, key=lambda c: c.prediction.time)


def select(
    m: int,
    k: int,
    n: int,
    machine: MachineParams,
    top: int = 2,
    max_levels: int = 2,
    measure: Callable[[Candidate], float] | None = None,
    **enum_kwargs,
) -> tuple[Candidate, list[Candidate]]:
    """Pick the implementation for ``(m, k, n)`` the way the paper does.

    The model ranks all candidates; the ``top`` best are then *measured*
    (default: the fringe-aware loop simulator) and the fastest measured one
    wins.  Returns ``(winner, ranked_candidates)``.
    """
    ranked = rank_candidates(
        enumerate_candidates(m, k, n, machine, max_levels=max_levels, **enum_kwargs)
    )
    if not ranked:
        raise ValueError(f"no candidate fits problem {(m, k, n)}")
    finalists = ranked[: max(1, top)]

    def _simulated_measure(c: Candidate) -> float:
        return simulate_time(m, k, n, c.multilevel(), c.variant, machine)

    measure_fn = measure if measure is not None else _simulated_measure
    winner = min(finalists, key=measure_fn)
    return winner, ranked


def _model_backend(threads: int, workers: str = "threads") -> str:
    """The model's pick of the ``backend`` dimension for one worker setup.

    Ranks the *available* registered backends by their priced per-call
    dispatch overhead (:func:`repro.model.perfmodel.
    predict_backend_overhead`), registration order breaking ties — so
    serial and thread-pooled calls price the specialized compiled kernels
    as the win, and a process-runtime call (which a compiling backend
    would delegate anyway — worker processes cannot share its buffers)
    resolves to the reference interpreter.
    """
    from repro import kernels
    from repro.model.perfmodel import predict_backend_overhead

    names = [b.name for b in kernels.available_backends()]
    return min(
        names,
        key=lambda nm: (
            predict_backend_overhead(nm, threads, workers), names.index(nm)),
    )


@lru_cache(maxsize=1024)
def _model_config(
    m: int,
    k: int,
    n: int,
    machine: MachineParams | None = None,
    max_levels: int = 2,
) -> tuple:
    """Pure model-guided configuration (the cold path of :func:`auto_config`).

    Ranks the generated family with the §4.4 performance model and returns
    ``(algorithm, levels, variant, engine, threads, backend, workers)``
    ready for the plan compiler and runtime: the winning per-level shape
    stack and variant when the model predicts FMM beats the GEMM baseline,
    else the classical ``<1,1,1>`` plan (a single plain matmul).  The
    execution engine is the direct task-graph runtime — the
    wall-clock-fast path of this substrate; callers wanting the
    instrumented blocked substrate ask for it explicitly.  ``threads``
    comes from the canonical multicore scaling model
    (:func:`repro.core.parallel.pick_threads`, which walks the
    paper-testbed ``machine_factory`` since ``machine`` here is a single
    configuration point, not a cores->bandwidth family), capped by the
    cores this host actually has.  ``backend`` is the priced leaf-backend
    pick (:func:`_model_backend`); ``workers`` the priced thread-vs-
    process runtime pick at that thread count
    (:func:`repro.core.parallel.pick_workers`).

    Decisions are memoized per ``(m, k, n, machine, max_levels)``, so the
    enumeration cost is paid once per problem shape *per process* — the
    wisdom store is what survives restarts.
    """
    from repro.core.parallel import pick_threads, pick_workers
    from repro.model.machines import generic_laptop

    machine = machine or generic_laptop()
    candidates = enumerate_candidates(m, k, n, machine, max_levels=max_levels)
    best = rank_candidates(candidates)[0] if candidates else None
    if best is None or best.prediction.time >= predict_gemm(m, k, n, machine).time:
        threads = pick_threads(m, k, n, None, "abc")
        workers = pick_workers(m, k, n, None, "abc", threads=threads)
        return ("classical", 1, "abc", "direct", threads,
                _model_backend(threads, workers), workers)
    ml = best.multilevel()
    threads = pick_threads(m, k, n, ml, best.variant)
    workers = pick_workers(m, k, n, ml, best.variant, threads=threads)
    return (best.shapes, len(best.shapes), best.variant, "direct", threads,
            _model_backend(threads, workers), workers)


def auto_config(
    m: int,
    k: int,
    n: int,
    machine: MachineParams | None = None,
    max_levels: int = 2,
    *,
    dtype="float64",
    threads: int | None = None,
    tune: str = "readonly",
) -> tuple:
    """Configuration for ``multiply(engine="auto")``: wisdom first, model second.

    With ``tune="readonly"`` (the default) the persistent wisdom store
    (:mod:`repro.tune.wisdom`) is consulted for this problem class —
    a hit returns the *measured-best* configuration in a dict probe,
    without enumerating or pricing a single candidate.  On a miss the
    model path runs (:func:`_model_config`), using the back-fit
    calibrated machine from the wisdom file when one exists and no
    explicit ``machine`` was given.  ``tune="on"`` additionally runs a
    short budgeted tuning pass on a miss and returns (and records) its
    winner; ``tune="off"`` is the pure cold-model path.

    ``dtype`` and ``threads`` scope the wisdom bucket (``threads=None``
    is the ``auto`` thread class); they do not affect the model path,
    whose thread pick is derived from the scaling model either way.

    Returns the 7-tuple ``(algorithm, levels, variant, engine, threads,
    backend, workers)``.  A wisdom hit whose recorded backend is not
    available in this process (e.g. a ``"numba"`` win replayed where
    numba is not installed) degrades the backend — and only the backend —
    to ``"reference"``.  ``workers`` is the thread-vs-process runtime
    mode (wisdom files recorded before the dimension existed read as
    ``"threads"``, the mode they actually measured).
    """
    from repro.core.spec import normalize_tune

    tune = normalize_tune(tune)
    if tune != "off":
        from repro.tune.wisdom import default_store

        store = default_store()
        hit = store.lookup_tuple(m, k, n, dtype=dtype, threads=threads)
        if hit is not None:
            return (*hit[:5], _usable_backend(hit[5]), hit[6])
        if tune == "on":
            from repro.tune.tuner import tune_problem

            report = tune_problem(
                m, k, n, dtype=dtype, threads=threads,
                max_levels=max_levels, machine=machine, store=store,
            )
            cfg = report.config
            return (*cfg[:5], _usable_backend(cfg[5]), cfg[6])
        if machine is None:
            machine = store.machine_params()
    return _model_config(m, k, n, machine, max_levels)


def _usable_backend(name: str) -> str:
    """``name`` when that backend is registered *and* available, else
    ``"reference"`` (the backend every configuration can execute on)."""
    from repro import kernels

    try:
        backend = kernels.get_backend(name)
    except ValueError:
        return "reference"
    return name if backend.available() else "reference"


def best_gflops_series(
    sweep: Iterable[tuple[int, int, int]],
    machine: MachineParams,
    **kwargs,
) -> list[tuple[tuple[int, int, int], Candidate, float]]:
    """Convenience for Fig.-8 style curves: winner + simulated GFLOPS per point."""
    out = []
    for (m, k, n) in sweep:
        winner, _ = select(m, k, n, machine, **kwargs)
        t = simulate_time(m, k, n, winner.multilevel(), winner.variant, machine)
        out.append(((m, k, n), winner, effective_gflops(m, k, n, t)))
    return out
