"""Variant-aware task-graph runtime over the :class:`CompiledPlan` IR.

The paper's central implementation result is that fast matrix
multiplication pays off when the per-product operand sums and C-updates
are *fused* into the execution pipeline (the Naive/AB/ABC variant family
of §4.1) instead of materializing all R product temporaries.  This module
is that idea as **one runtime**: a compiled plan lowers to a task graph in
one of two modes, and every engine — the fast NumPy ``direct`` path, the
instrumented simulated-BLIS ``blocked`` path, and batched stacks — is a
thin client of the same graphs with a pluggable per-product *leaf kernel*.

**Staged lowering** (``fusion="staged"``) is the reference-framework
memory behavior, kept for small cores where batched matmuls beat kernel
dispatch overhead:

* **gather** tasks copy the recursive blocks of ``A``/``B`` into
  contiguous arena slabs ``A~``/``B~``;
* **product** tasks compute ranges of coefficient products ``M_r`` via
  stacked matmuls (``S = Ut A~``, ``T = Vt B~``, ``M = S @ T``);
* **scatter** tasks own disjoint destination blocks of ``C`` and apply
  ``upd = W M`` — all R products live simultaneously (O(R) slabs).

**Tiled lowering** (``fusion="tiled"``) is the fused pipeline taken
out-of-core: the same task graph, but the slab-scale buffers (operand
slabs, group ``S``/``T`` strips, the multi-worker ``Cacc``
accumulators) live in mmap-spilled arena storage
(:mod:`repro.core.workspace`), and each **tile** task streams the
batched product matmul and the scatter-accumulate through Morton-ordered
row strips of a bounded RAM window (:mod:`repro.core.tiles`).  The
group boundaries, coefficient GEMMs and accumulation order are the
fused pipeline's exactly — relocating a buffer to mmap changes no bits,
and the strip-split batched matmul is row-invariant — so tiled results
are bitwise-equal to the in-core paths at every worker count while
operands (which may themselves be ``np.memmap``-backed) and slabs far
larger than RAM stream through a window the memory budget sizes
(:func:`repro.core.spec.effective_mem_budget_bytes`).

**Fused lowering** (``fusion="fused"``) is the paper's streaming
pipeline: each **fproduct** task walks a range of products, forming the
A-combos and B-combos of a small *group* in per-worker recycled buffers,
computing the group's products, and immediately scatter-accumulating
each into its C tiles — O(workers · group) live product buffers instead
of O(R).  On the NumPy substrate the combos come from short
coefficient-GEMM strips against the gathered operand slabs (so the fused
pipeline keeps the staged pipeline's arithmetic efficiency while
dropping its O(R) ``S``/``T``/``M``/``upd`` slabs); a leaf that packs
its own operands (BLIS) instead gathers each product's combos straight
from the block views.  With several workers, each accumulates into a
private ``Cacc`` slab and a deterministic **reduce** phase folds the
slabs into ``C`` (write-disjoint block ranges), so results are
bitwise-reproducible for a given thread count.

The §4.1 write-back variants are *lowering modes* of this one runtime:
``naive`` (materialize everything) lowers staged; ``ab``/``abc`` lower
fused once the staged slabs outgrow the cache
(:func:`repro.core.spec.resolve_fusion`).  On the BLIS substrate the leaf
kernel (:class:`repro.core.variants.BlisProductLeaf`) additionally fuses
the sums into packing (ab/abc) and the C update into the macro-kernel
(abc), exactly as the paper generates.

Phases are separated by barriers; tasks within a phase are independent.
``threads=1`` executes the *same* schedule inline.  Worker pools are
process-wide and reused across calls (:func:`get_pool`), and every
temporary lives in the recycling workspace arena
(:mod:`repro.core.workspace`), whose per-execution high-water meter feeds
``peak_workspace_bytes`` on the :class:`ExecutionReport` every execution
publishes (:func:`last_report`).

The leaf implementations live behind the pluggable backend substrate
(:mod:`repro.kernels`): every execution resolves a registered ``backend``
by name, and a *compiling* backend (``"specialized"``, ``"numba"``) may
serve the whole core with one per-plan exec-compiled kernel
(``core_path="kernel"``) — falling back to this interpreted pipeline for
any call it cannot specialize, so behavior never depends on the backend
choice, only speed does.

Fallbacks (both serial, both documented limits of the arena path): staged
cores whose stacked intermediates exceed ``vector_cap`` run the
memory-light per-step loop, as does a destination dtype that cannot
absorb the plan dtype (e.g. integer ``C``).
"""

from __future__ import annotations

import atexit
import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import kernels as kernel_backends
from repro.core import procpool
from repro.core.compile import CompiledPlan
from repro.obs import metrics as obs_metrics, reports as obs_reports, trace as obs_trace
from repro.obs.logcfg import get_logger
from repro.core.spec import (
    DEFAULT_FUSED_GROUP,
    effective_fused_group,
    normalize_backend,
    normalize_workers,
    validate_resolved_fusion,
)
from repro.core.tiles import resolve_tile_rows, strip_bounds
from repro.core.workspace import pack_layout, shared_arena, workspace_arena
from repro.kernels.reference import (
    NUMPY_LEAF,
    NumpyProductLeaf,
    gather as _gather,
    scatter_accumulate as _scatter_product,
)

__all__ = [
    "ExecutionReport",
    "NumpyProductLeaf",
    "Task",
    "TaskGraph",
    "lower_plan",
    "execute_plan",
    "last_report",
    "get_pool",
    "pool_info",
    "shutdown_pools",
    "DEFAULT_VECTOR_CAP",
    "DEFAULT_CHUNK_TARGET",
    "DEFAULT_FUSED_GROUP",
]

#: Per-element stacked-intermediate bound for the staged arena path (elements).
DEFAULT_VECTOR_CAP = 1 << 24
#: Intermediate-size target for slicing batches into cache-resident chunks.
DEFAULT_CHUNK_TARGET = 1 << 17

_log = get_logger(__name__)

_m_executions = obs_metrics.counter(
    "runtime.executions", "execute_plan calls completed"
)
_m_latency = obs_metrics.histogram(
    "runtime.latency_s", "execute_plan wall-clock latency in seconds"
)
_m_io_bytes = obs_metrics.counter(
    "runtime.io_bytes",
    "logical bytes the tiled lowering moved between the RAM window "
    "and mmap-spilled buffers",
)


# ---------------------------------------------------------------------- #
# Reusable worker pools
# ---------------------------------------------------------------------- #
_pool_lock = threading.Lock()
_pools: dict[int, ThreadPoolExecutor] = {}
_pools_atexit = False


def get_pool(workers: int) -> ThreadPoolExecutor:
    """The process-wide pool with ``workers`` threads (created on first use).

    Pools persist for the life of the process and are shared by every
    execution requesting the same worker count — no per-call pool spin-up
    or teardown.  Teardown is registered with ``atexit`` on first use
    (the process-pool twin in :mod:`repro.core.procpool` does the same).
    """
    global _pools_atexit
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    with _pool_lock:
        if not _pools_atexit:
            atexit.register(shutdown_pools)
            _pools_atexit = True
        pool = _pools.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-rt{workers}"
            )
            _pools[workers] = pool
            _log.debug("created thread pool with %d workers", workers)
        return pool


def pool_info() -> dict[int, int]:
    """``{workers: max_workers}`` of every live pool (for tests/telemetry)."""
    with _pool_lock:
        return {w: p._max_workers for w, p in _pools.items()}


def shutdown_pools() -> None:
    """Shut down and drop every pooled executor."""
    with _pool_lock:
        pools = list(_pools.values())
        _pools.clear()
    for p in pools:
        p.shutdown(wait=True)


def _drop_pools_after_fork() -> None:  # pragma: no cover - fork hook
    """A forked child inherits the pool dict but none of the threads.

    Dropping the dead executors (without joining their nonexistent
    threads) keeps the child from ever dispatching onto them, and
    resetting the atexit flag lets the child register its own teardown.
    """
    global _pool_lock, _pools_atexit
    _pool_lock = threading.Lock()
    _pools.clear()
    _pools_atexit = False


os.register_at_fork(after_in_child=_drop_pools_after_fork)


# ---------------------------------------------------------------------- #
# Lowering: CompiledPlan -> TaskGraph
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Task:
    """One schedulable unit: a half-open ``[lo, hi)`` range of one kind.

    Staged kinds: ``gather_a``/``gather_b`` (operand block ranges),
    ``product`` (step ranges over ``r``), ``scatter`` (destination block
    ranges).  Fused kinds: ``fproduct`` (a step range streamed through the
    per-worker buffer set ``slot``), ``reduce`` (destination block ranges
    folding the worker ``Cacc`` slabs into ``C``).  Tiled kind: ``tile``
    (an fproduct range whose product/scatter phase streams row strips
    through the slot's bounded RAM window).  All: ``fringe`` (peel-fringe
    indices).
    """

    kind: str
    lo: int
    hi: int
    slot: int = 0


@dataclass(frozen=True)
class TaskGraph:
    """The lowered schedule of one plan for one worker count and mode.

    ``phases`` are executed in order with a barrier between consecutive
    phases; tasks inside a phase are mutually independent (disjoint
    writes) and may run concurrently.
    """

    key: tuple
    workers: int
    fusion: str
    phases: tuple[tuple[Task, ...], ...]
    gathered: bool = True

    @property
    def n_tasks(self) -> int:
        return sum(len(p) for p in self.phases)

    @property
    def n_slots(self) -> int:
        """Worker-buffer sets the fused/tiled pipelines need (0 staged)."""
        return sum(
            1 for p in self.phases for t in p
            if t.kind in ("fproduct", "tile")
        )


def _split(total: int, parts: int) -> list[tuple[int, int]]:
    """Balanced half-open ranges covering ``[0, total)`` (no empty ranges)."""
    parts = max(1, min(parts, total))
    step, rem = divmod(total, parts)
    ranges, lo = [], 0
    for i in range(parts):
        hi = lo + step + (1 if i < rem else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


_graph_lock = threading.Lock()
_graphs: dict[tuple, TaskGraph] = {}
_GRAPH_CACHE_MAX = 256


def lower_plan(
    cplan: CompiledPlan,
    workers: int = 1,
    fusion: str | None = None,
    gathered: bool = True,
) -> TaskGraph:
    """Lower a compiled plan to its task DAG for ``workers`` workers.

    ``fusion`` defaults to the mode resolved at compile time
    (``cplan.fusion``); pass ``"staged"``, ``"fused"`` or ``"tiled"``
    to override.
    ``gathered`` (fused mode only) controls whether the graph stages the
    operand blocks into contiguous slabs first — the NumPy group-streaming
    pipeline wants them (its combos are coefficient-GEMM strips over the
    slabs); a leaf that packs operands itself (BLIS) does not.
    Pure metadata (index ranges only — no arrays), memoized per
    ``(plan key, workers, fusion, gathered)``.
    """
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    fusion = validate_resolved_fusion(
        cplan.fusion if fusion is None else fusion
    )
    gathered = bool(gathered) if fusion == "fused" else True
    key = (cplan.key, workers, fusion, gathered)
    with _graph_lock:
        hit = _graphs.get(key)
        if hit is not None:
            return hit

    Pa = len(cplan.a_table)
    Pb = len(cplan.b_table)
    Pc = len(cplan.c_table)
    R = cplan.rank_total
    phases: list[tuple[Task, ...]] = []
    if cplan.peel_plan.has_core:
        if fusion == "staged" or gathered:
            gather = [Task("gather_a", lo, hi) for lo, hi in _split(Pa, workers)]
            gather += [Task("gather_b", lo, hi) for lo, hi in _split(Pb, workers)]
            phases.append(tuple(gather))
        if fusion == "staged":
            phases.append(
                tuple(Task("product", lo, hi) for lo, hi in _split(R, workers))
            )
            phases.append(
                tuple(Task("scatter", lo, hi) for lo, hi in _split(Pc, workers))
            )
        else:
            kind = "tile" if fusion == "tiled" else "fproduct"
            ranges = _split(R, workers)
            phases.append(
                tuple(
                    Task(kind, lo, hi, slot=i)
                    for i, (lo, hi) in enumerate(ranges)
                )
            )
            if len(ranges) > 1:
                # Workers accumulated into private Cacc slabs; fold them
                # into C over write-disjoint destination-block ranges.
                phases.append(
                    tuple(Task("reduce", lo, hi) for lo, hi in _split(Pc, workers))
                )
    fringes = [
        Task("fringe", i, i + 1)
        for i, f in enumerate(cplan.peel_plan.fringes)
        if 0 not in f.shape
    ]
    if fringes:
        phases.append(tuple(fringes))
    graph = TaskGraph(
        key=key, workers=workers, fusion=fusion,
        phases=tuple(phases), gathered=gathered,
    )
    with _graph_lock:
        graph = _graphs.setdefault(key, graph)
        while len(_graphs) > _GRAPH_CACHE_MAX:
            _graphs.pop(next(iter(_graphs)))
    return graph


# ---------------------------------------------------------------------- #
# Leaf kernels — the implementations live in :mod:`repro.kernels`
# (``reference.py`` hosts the former in-module ``_gather`` /
# ``_scatter_product`` / ``NumpyProductLeaf``); the names above re-export
# them for compatibility, and the bindings below call through them so the
# interpreted pipeline and the reference backend cannot diverge.
# ---------------------------------------------------------------------- #
def _run_fringe(f, A, B, C) -> None:
    NUMPY_LEAF.fringe(f, A, B, C)


# ---------------------------------------------------------------------- #
# Execution bindings
# ---------------------------------------------------------------------- #
def _coef_matmul(coef, X2, out, L) -> None:
    """``out = coef @ X2`` with batch-invariant bits.

    With a leading batch the slab columns concatenate ``L`` per-element
    column blocks; a single wide GEMM can select a different BLAS kernel
    than the unbatched call and change the k-summation order (~1 ulp,
    observed on small-``m`` coefficient operators).  Slicing per batch
    element keeps every GEMM's ``(m, k, n)`` identical to the 2-D run —
    only ``lda``/``ldc`` differ, which BLAS accumulation order does not
    depend on — so batched execution stays bitwise-equal to running each
    element alone.
    """
    if L == 1:
        np.matmul(coef, X2, out=out)
        return
    cols = X2.shape[1] // L
    for b in range(L):
        sl = slice(b * cols, (b + 1) * cols)
        np.matmul(coef, X2[:, sl], out=out[:, sl])


class _GatheredSlabs:
    """Shared operand-slab machinery of the slab-staging bindings.

    Provides the ``A~``/``B~`` slab setup and the gather task bodies, so
    the staged and grouped-fused pipelines stage operands through one
    code path and cannot diverge.  Slot-free (``__slots__ = ()``) so it
    composes with any slotted binding; subclasses declare the field
    names.
    """

    __slots__ = ()

    def _init_slabs(self, ws) -> None:
        self.Ablk = ws["Ablk"]
        self.Bblk = ws["Bblk"]
        self.A2 = self.Ablk.reshape(len(self.Av), -1)
        self.B2 = self.Bblk.reshape(len(self.Bv), -1)

    def _gather(self, task: Task) -> bool:
        """Run a gather task; False when ``task`` is another kind."""
        if task.kind == "gather_a":
            np.stack(self.Av[task.lo : task.hi], out=self.Ablk[task.lo : task.hi])
        elif task.kind == "gather_b":
            np.stack(self.Bv[task.lo : task.hi], out=self.Bblk[task.lo : task.hi])
        else:
            return False
        return True


class _StagedBinding(_GatheredSlabs):
    """Binds a staged task graph to concrete operand views and arena slabs.

    All reshapes below are views of C-contiguous arena slabs, and every
    matmul writes through ``out=`` — the hot path performs no temporary
    allocation.
    """

    __slots__ = (
        "cplan", "Av", "Bv", "Cv", "L",
        "Ablk", "Bblk", "A2", "B2", "S2", "T2", "S3", "T3", "M3", "M2",
        "upd", "upd2",
    )

    def __init__(self, cplan, Ac, Bc, Cc, bm, bk, bn, ws):
        self.cplan = cplan
        self.Av = cplan.block_views(Ac, "A", bm, bk)
        self.Bv = cplan.block_views(Bc, "B", bk, bn)
        self.Cv = cplan.block_views(Cc, "C", bm, bn)
        self.L = math.prod(Ac.shape[:-2])
        R = cplan.rank_total
        self._init_slabs(ws)
        S, T, M = ws["S"], ws["T"], ws["M"]
        self.S2 = S.reshape(R, -1)
        self.T2 = T.reshape(R, -1)
        self.S3 = S.reshape(-1, bm, bk)
        self.T3 = T.reshape(-1, bk, bn)
        self.M3 = M.reshape(-1, bm, bn)
        self.M2 = M.reshape(R, -1)
        self.upd = ws["upd"]
        self.upd2 = self.upd.reshape(self.upd.shape[0], -1)

    def run(self, task: Task) -> None:
        kind, lo, hi = task.kind, task.lo, task.hi
        if self._gather(task):
            pass
        elif kind == "product":
            cp, L = self.cplan, self.L
            _coef_matmul(cp.Ut[lo:hi], self.A2, self.S2[lo:hi], L)
            _coef_matmul(cp.Vt[lo:hi], self.B2, self.T2[lo:hi], L)
            np.matmul(
                self.S3[lo * L : hi * L],
                self.T3[lo * L : hi * L],
                out=self.M3[lo * L : hi * L],
            )
        elif kind == "scatter":
            _coef_matmul(self.cplan.W[lo:hi], self.M2, self.upd2[lo:hi],
                         self.L)
            for p in range(lo, hi):
                self.Cv[p] += self.upd[p]
        else:  # pragma: no cover - lowering emits only the kinds above
            raise ValueError(f"unknown task kind {kind!r}")


class _FusedBindingBase:
    """Shared per-worker accumulator machinery of the fused bindings.

    Slot ``i`` of the per-worker slabs (and, with several slots,
    ``Cacc``) belongs exclusively to fproduct task ``i``, so the
    streaming pipelines run lock-free; :meth:`_reduce` folds the private
    ``Cacc`` accumulators into ``C`` in deterministic slot order (both
    fused pipelines share this fold, so they cannot diverge).
    """

    __slots__ = ("cplan", "steps", "Av", "Bv", "Cv", "Cacc", "n_slots")

    def __init__(self, cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots):
        self.cplan = cplan
        self.steps = cplan.steps
        self.Av = cplan.block_views(Ac, "A", bm, bk)
        self.Bv = cplan.block_views(Bc, "B", bk, bn)
        self.Cv = cplan.block_views(Cc, "C", bm, bn)
        self.n_slots = n_slots
        if n_slots > 1:
            self.Cacc = ws["Cacc"]
            self.Cacc[...] = 0.0
        else:
            self.Cacc = None

    def _slot_target(self, slot: int):
        """The C views this slot accumulates into (private when shared)."""
        return self.Cv if self.Cacc is None else self.Cacc[slot]

    def _reduce(self, task: Task) -> None:
        for p in range(task.lo, task.hi):
            v = self.Cv[p]
            for w in range(self.n_slots):
                v += self.Cacc[w][p]


class _FusedBinding(_FusedBindingBase):
    """Binds an *ungathered* fused graph to views + per-worker buffers.

    The pipeline for custom leaves (BLIS packs its own operands): each
    fproduct task walks its product range, the leaf gathering every
    product's A/B-combos straight from the block views into the slot's
    recycled ``S``/``T``/``M`` buffers.
    """

    __slots__ = ("S", "T", "M", "leaf")

    def __init__(self, cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots, leaf):
        super().__init__(cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots)
        self.S = ws.buffers.get("S")
        self.T = ws.buffers.get("T")
        self.M = ws.buffers.get("M")
        self.leaf = leaf

    def run(self, task: Task) -> None:
        kind = task.kind
        if kind == "fproduct":
            slot = task.slot
            Ct = self._slot_target(slot)
            S = None if self.S is None else self.S[slot]
            T = None if self.T is None else self.T[slot]
            M = None if self.M is None else self.M[slot]
            leaf, Av, Bv = self.leaf, self.Av, self.Bv
            for step in self.steps[task.lo : task.hi]:
                leaf.product(step, Av, Bv, Ct, S, T, M, slot)
        elif kind == "reduce":
            self._reduce(task)
        else:  # pragma: no cover - lowering emits only the kinds above
            raise ValueError(f"unknown task kind {kind!r}")


class _GroupedFusedBinding(_FusedBindingBase, _GatheredSlabs):
    """Binds a *gathered* fused graph: the NumPy group-streaming pipeline.

    Gather tasks stage the operand blocks into contiguous ``A~``/``B~``
    slabs (exactly like the staged pipeline — O(blocks of A/B), not
    O(R)).  Each fproduct task then streams its product range in groups
    of ``group``: the group's A/B-combos come from short coefficient-GEMM
    strips (``S_g = Ut[rows] @ A~``) written into the slot's recycled
    buffers, the group's products from one batched matmul, and every
    product is scatter-accumulated into C (or the slot's private
    ``Cacc``) while hot — only O(workers · group) product buffers are
    ever live.
    """

    __slots__ = ("L", "group", "Ablk", "Bblk", "A2", "B2",
                 "S", "T", "M", "S2", "T2", "S3", "T3", "M3", "scratch")

    def __init__(self, cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots, group):
        super().__init__(cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots)
        self.L = math.prod(Ac.shape[:-2])
        self.group = group
        self._init_slabs(ws)
        S, T, M = ws["S"], ws["T"], ws["M"]
        self.S, self.T, self.M = S, T, M
        self.S2 = [s.reshape(group, -1) for s in S]
        self.T2 = [t.reshape(group, -1) for t in T]
        self.S3 = [s.reshape(-1, bm, bk) for s in S]
        self.T3 = [t.reshape(-1, bk, bn) for t in T]
        self.M3 = [m_.reshape(-1, bm, bn) for m_ in M]
        # Per-slot dtype-matched scale strip for non-±1 scatter
        # coefficients; allocated only for plans that have them.
        self.scratch = ws.buffers.get("scratch")

    def run(self, task: Task) -> None:
        kind = task.kind
        if self._gather(task):
            pass
        elif kind == "fproduct":
            slot = task.slot
            Ct = self._slot_target(slot)
            cp, L, g = self.cplan, self.L, self.group
            M = self.M[slot]
            sc = None if self.scratch is None else self.scratch[slot]
            S2, T2 = self.S2[slot], self.T2[slot]
            S3, T3, M3 = self.S3[slot], self.T3[slot], self.M3[slot]
            for lo in range(task.lo, task.hi, g):
                hi = min(lo + g, task.hi)
                w = hi - lo
                _coef_matmul(cp.Ut[lo:hi], self.A2, S2[:w], L)
                _coef_matmul(cp.Vt[lo:hi], self.B2, T2[:w], L)
                np.matmul(S3[: w * L], T3[: w * L], out=M3[: w * L])
                for j in range(w):
                    _scatter_product(self.steps[lo + j], M[j], Ct, sc)
        elif kind == "reduce":
            self._reduce(task)
        else:  # pragma: no cover - lowering emits only the kinds above
            raise ValueError(f"unknown task kind {kind!r}")


def _scatter_strip(step, Ms, Ct, scratch, rows) -> None:
    """Row-strip twin of :func:`repro.kernels.reference.scatter_accumulate`.

    Accumulates one product's ``rows`` strip into the matching rows of
    its C tiles, with the same ±1 fast paths and dtype-matched scratch
    scaling.  Elementwise adds split by rows are bitwise-identical to
    the full-block accumulate, which is one half of the tiled pipeline's
    exactness argument (the other is the row-invariant batched matmul).
    """
    for i, w in step.c_terms:
        v = Ct[i][..., rows, :]
        if w == 1.0:
            v += Ms
        elif w == -1.0:
            v -= Ms
        elif scratch is not None:
            np.multiply(Ms, w, out=scratch)
            v += scratch
        else:
            v += w * Ms


class _TiledBinding(_FusedBindingBase, _GatheredSlabs):
    """Binds a tiled graph: the grouped-fused pipeline, out-of-core.

    Identical arithmetic to :class:`_GroupedFusedBinding` — same gather
    into contiguous slabs, same group boundaries, same full-shape
    coefficient GEMMs against the whole ``A~``/``B~`` slabs, same
    slot-order accumulation — with two relocations that change no bits:

    * the slab-scale buffers (``Ablk``/``Bblk``, the group ``S``/``T``
      strips, and the multi-worker ``Cacc``) live in mmap-spilled arena
      storage instead of RAM, and
    * the batched product matmul + scatter-accumulate stream over the
      Morton block's row strips (:func:`repro.core.tiles.strip_bounds`),
      so only a ``tile_rows``-high ``M`` window (plus scratch) is ever
      RAM-resident.

    The strip split is applied only where it is bitwise-safe: batched
    ``np.matmul`` row-splitting reproduces the full call's rows exactly
    for every strip height >= 2 (pinned by the tiled property suite),
    but a single-row strip takes a GEMV-style BLAS kernel with a
    different k-accumulation order — so strips are **never one row
    high** (:func:`repro.core.tiles.clamp_tile_rows` and the tail
    rebalance in :func:`repro.core.tiles.strip_bounds` guarantee it).
    The scatter is elementwise and splits trivially.  ``tile_rows ==
    bm`` degenerates to the fused pipeline with spilled slabs.
    """

    __slots__ = ("L", "group", "tile_rows", "strips",
                 "Ablk", "Bblk", "A2", "B2",
                 "S", "T", "M", "S2", "T2", "S3", "T3", "M3", "scratch")

    def __init__(self, cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots, group,
                 tile_rows):
        super().__init__(cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots)
        self.L = math.prod(Ac.shape[:-2])
        self.group = group
        self.tile_rows = tile_rows
        self.strips = strip_bounds(bm, tile_rows)
        self._init_slabs(ws)
        S, T, M = ws["S"], ws["T"], ws["M"]
        self.S, self.T, self.M = S, T, M
        self.S2 = [s.reshape(group, -1) for s in S]
        self.T2 = [t.reshape(group, -1) for t in T]
        self.S3 = [s.reshape(-1, bm, bk) for s in S]
        self.T3 = [t.reshape(-1, bk, bn) for t in T]
        self.M3 = [m_.reshape(-1, tile_rows, bn) for m_ in M]
        self.scratch = ws.buffers.get("scratch")

    def run(self, task: Task) -> None:
        kind = task.kind
        if self._gather(task):
            pass
        elif kind == "tile":
            slot = task.slot
            Ct = self._slot_target(slot)
            cp, L, g = self.cplan, self.L, self.group
            M = self.M[slot]
            sc_full = None if self.scratch is None else self.scratch[slot]
            S2, T2 = self.S2[slot], self.T2[slot]
            S3, T3, M3 = self.S3[slot], self.T3[slot], self.M3[slot]
            for lo in range(task.lo, task.hi, g):
                hi = min(lo + g, task.hi)
                w = hi - lo
                _coef_matmul(cp.Ut[lo:hi], self.A2, S2[:w], L)
                _coef_matmul(cp.Vt[lo:hi], self.B2, T2[:w], L)
                for r0, r1 in self.strips:
                    h = r1 - r0
                    np.matmul(S3[: w * L, r0:r1, :], T3[: w * L],
                              out=M3[: w * L, :h, :])
                    rows = slice(r0, r1)
                    sc = None if sc_full is None else sc_full[..., :h, :]
                    for j in range(w):
                        _scatter_strip(self.steps[lo + j],
                                       M[j][..., :h, :], Ct, sc, rows)
        elif kind == "reduce":
            self._reduce(task)
        else:  # pragma: no cover - lowering emits only the kinds above
            raise ValueError(f"unknown task kind {kind!r}")


class _FringeBinding:
    """Binds fringe tasks to the full operands (no arena buffers needed)."""

    __slots__ = ("fringes", "A", "B", "C", "leaf")

    def __init__(self, fringes, A, B, C, leaf=NUMPY_LEAF):
        self.fringes = fringes
        self.A, self.B, self.C = A, B, C
        self.leaf = leaf

    def run(self, task: Task) -> None:
        f = self.fringes[task.lo]
        if self.A.ndim == 3 and not self.leaf.supports_batch:
            for b in range(self.A.shape[0]):
                self.leaf.fringe(f, self.A[b], self.B[b], self.C[b])
        else:
            self.leaf.fringe(f, self.A, self.B, self.C)


def _run_phase(binding, tasks, pool) -> None:
    inline = pool is None or len(tasks) == 1
    with obs_trace.span("phase:" + tasks[0].kind, "phase",
                        tasks=len(tasks),
                        mode="inline" if inline else "pool"):
        if inline:
            for t in tasks:
                binding.run(t)
        else:
            # list() is the barrier: it drains the map and re-raises worker
            # exceptions before the next phase may start.
            list(pool.map(binding.run, tasks))


# ---------------------------------------------------------------------- #
# Workspace specs (mirrored by repro.model.perfmodel.predict_workspace_bytes)
# ---------------------------------------------------------------------- #
def _staged_workspace_spec(cplan, lead, bm, bk, bn):
    dt = cplan.dtype
    R = cplan.rank_total
    return {
        "Ablk": ((len(cplan.a_table),) + lead + (bm, bk), dt),
        "Bblk": ((len(cplan.b_table),) + lead + (bk, bn), dt),
        "S": ((R,) + lead + (bm, bk), dt),
        "T": ((R,) + lead + (bk, bn), dt),
        "M": ((R,) + lead + (bm, bn), dt),
        "upd": ((len(cplan.c_table),) + lead + (bm, bn), dt),
    }


def _fused_workspace_spec(cplan, lead, bm, bk, bn, n_slots, needs):
    """Per-worker single-product buffers (the ungathered / leaf pipeline).

    Only the buffers the leaf declares in ``needs_buffers`` are
    allocated — a fully-fused kernel (BLIS abc: no ``M_r`` buffer at
    all) checks out nothing but its ``Cacc`` accumulators, so the
    reported peak matches the variant's semantics.
    """
    dt = cplan.dtype
    shapes = {
        "S": ((n_slots,) + lead + (bm, bk), dt),
        "T": ((n_slots,) + lead + (bk, bn), dt),
        "M": ((n_slots,) + lead + (bm, bn), dt),
    }
    spec = {name: shapes[name] for name in needs}
    if n_slots > 1:
        spec["Cacc"] = ((n_slots, len(cplan.c_table)) + lead + (bm, bn), dt)
    return spec


def _grouped_workspace_spec(cplan, lead, bm, bk, bn, n_slots, group):
    """Operand slabs + per-worker group buffers (the NumPy fused pipeline)."""
    dt = cplan.dtype
    spec = {
        "Ablk": ((len(cplan.a_table),) + lead + (bm, bk), dt),
        "Bblk": ((len(cplan.b_table),) + lead + (bk, bn), dt),
        "S": ((n_slots, group) + lead + (bm, bk), dt),
        "T": ((n_slots, group) + lead + (bk, bn), dt),
        "M": ((n_slots, group) + lead + (bm, bn), dt),
    }
    if cplan.has_nonunit_c_coeffs:
        # Per-slot scale strip: keeps the non-±1 scatter-accumulate
        # dtype-matched and allocation-free (see scatter_accumulate).
        spec["scratch"] = ((n_slots,) + lead + (bm, bn), dt)
    if n_slots > 1:
        spec["Cacc"] = ((n_slots, len(cplan.c_table)) + lead + (bm, bn), dt)
    return spec


def _tiled_workspace_spec(cplan, lead, bm, bk, bn, n_slots, group,
                          tile_rows):
    """Spilled slabs + RAM strip window (the out-of-core tiled pipeline).

    Same shapes as :func:`_grouped_workspace_spec` except the product
    buffer ``M`` (and the scatter scratch) shrink from full blocks to
    ``tile_rows``-high strips, and every slab-scale buffer carries the
    ``"mmap"`` flag — the arena backs those with anonymous temp files
    and excludes them from the RAM meters, so a tiled execution's
    measured ``peak_workspace_bytes`` *is* the strip window
    (``predict_tile_window_bytes`` is its byte-exact model twin).
    """
    dt = cplan.dtype
    spec = {
        "Ablk": ((len(cplan.a_table),) + lead + (bm, bk), dt, "mmap"),
        "Bblk": ((len(cplan.b_table),) + lead + (bk, bn), dt, "mmap"),
        "S": ((n_slots, group) + lead + (bm, bk), dt, "mmap"),
        "T": ((n_slots, group) + lead + (bk, bn), dt, "mmap"),
        "M": ((n_slots, group) + lead + (tile_rows, bn), dt),
    }
    if cplan.has_nonunit_c_coeffs:
        spec["scratch"] = ((n_slots,) + lead + (tile_rows, bn), dt)
    if n_slots > 1:
        spec["Cacc"] = (
            (n_slots, len(cplan.c_table)) + lead + (bm, bn), dt, "mmap"
        )
    return spec


def _tile_window_bytes(cplan, lead_elems, bn, n_slots, group, tile_rows):
    """RAM bytes of the tiled strip window for one core execution.

    Byte-exact twin of the non-``"mmap"`` entries of
    :func:`_tiled_workspace_spec` (and of the model's
    ``predict_tile_window_bytes``): the ``M`` strip buffers plus, for
    plans with non-±1 scatter coefficients, one scratch strip per slot.
    """
    elems = n_slots * group * lead_elems * tile_rows * bn
    if cplan.has_nonunit_c_coeffs:
        elems += n_slots * lead_elems * tile_rows * bn
    return elems * cplan.dtype.itemsize


def _tiled_io_stats(cplan, lead_elems, bm, bk, bn, n_slots, group,
                    tile_rows, ranges):
    """Analytic ``(io_bytes, n_tiles)`` of one tiled core execution.

    ``io_bytes`` counts the logical bytes moved between the RAM window
    and the mmap-spilled buffers: the gather's slab writes, each group's
    coefficient-GEMM slab reads and ``S``/``T`` writes, the strip loop's
    ``S``-row and per-strip ``T``-group reads, and (multi-worker) the
    spilled ``Cacc``'s zero-fill, scatter read-modify-writes and reduce
    read.  ``n_tiles`` is the number of streamed strips (one per group x
    strip).  Both are deterministic functions of the task graph and the
    shapes — computed identically for the thread and process drivers, so
    the report's figures never depend on the worker mode.
    """
    item = cplan.dtype.itemsize
    L = lead_elems
    slab = (len(cplan.a_table) * bm * bk
            + len(cplan.b_table) * bk * bn) * L * item
    n_strips = len(strip_bounds(bm, tile_rows))
    io = slab  # gather writes both operand slabs once
    n_tiles = 0
    steps = cplan.steps
    for lo, hi in ranges:
        for glo in range(lo, hi, group):
            w = min(glo + group, hi) - glo
            s_bytes = w * L * bm * bk * item
            t_bytes = w * L * bk * bn * item
            # Coefficient GEMMs read both slabs and write the group S/T;
            # the strip loop then reads every S row once and the T group
            # once per strip.
            io += slab + 2 * s_bytes + (1 + n_strips) * t_bytes
            n_tiles += n_strips
        if n_slots > 1:
            # Scatter read-modify-writes the slot's spilled Cacc tiles.
            writes = sum(len(s.c_terms) for s in steps[lo:hi])
            io += 2 * writes * L * bm * bn * item
    if n_slots > 1:
        cacc = n_slots * len(cplan.c_table) * L * bm * bn * item
        io += 2 * cacc  # zero-fill + the reduce fold's read
    return io, n_tiles


# ---------------------------------------------------------------------- #
# Execution reports
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecutionReport:
    """What one :func:`execute_plan` call actually did.

    Attributes
    ----------
    shape, batch:
        Plan shape ``(m, k, n)`` and leading batch count (1 for 2-D).
    variant, fusion:
        The §4.1 write-back variant and the lowering mode that executed
        (``fusion`` may differ from the plan's when a leaf forces fused).
    threads:
        Worker count requested.
    core_path:
        ``"kernel"`` (a backend's compiled whole-core kernel), ``"graph"``
        (task-graph pipeline), ``"steps"`` (serial per-step fallback) or
        ``"none"`` (pure-fringe problem).
    n_tasks:
        Tasks in the lowered graph (0 off the graph path).
    peak_workspace_bytes:
        High-water arena bytes this execution checked out — the measured
        memory footprint of its temporaries.  The serial per-step
        fallback (``core_path="steps"``) allocates outside the arena;
        its figure is the analytic live footprint of one product's
        S/T/M buffers instead, never a misleading zero.  A compiled
        kernel's buffers likewise live outside the arena; its figure is
        the kernel's preallocated-buffer total.
    backend:
        The leaf-kernel backend this call resolved
        (:mod:`repro.kernels`); ``"reference"`` is the interpreter.
    backend_path:
        How the backend served the core: ``"compiled"`` (exec-compiled
        specialized kernel), ``"jit"`` (numba-wrapped kernel),
        ``"compiled-parallel"`` / ``"jit-parallel"`` (the phase-parallel
        emission driven through the thread pool at ``threads > 1``) or
        ``"interpreted"`` (delegated to the task-graph pipeline —
        always the case for the reference backend and for the process
        runtime, whose workers cannot share a kernel's process-local
        buffers).
    kernel_cached:
        On the kernel path: ``False`` when this call compiled the
        kernel, ``True`` when it reused a cached one.  ``None`` off the
        kernel path.
    worker_mode:
        How the core's tasks actually executed: ``"serial"`` (inline, no
        pool — including every ``threads=1`` call and the per-step
        fallback), ``"threads"`` (shared thread pool) or ``"processes"``
        (GIL-free worker-process pool over shared memory).  May differ
        from the *requested* mode when the core could not shard (e.g. a
        pure-fringe problem).
    n_workers:
        Workers the executing pool used (1 when ``worker_mode="serial"``).
    ipc_bytes:
        Bytes staged into / copied out of shared-memory segments by this
        call (operand slabs in, C accumulator in + out).  0 off the
        process path — thread workers share the caller's address space.
        A batched execution reports the **sum** over its chunks.
    schedule:
        The plan's schedule signature (e.g. ``"<2,2,2>@2"``) — the key
        the report history and wisdom seeding aggregate on.  Empty for
        reports built without a plan.
    dtype:
        The plan compute dtype name (``"float64"``, ...).
    duration_s:
        Wall-clock seconds for the whole ``execute_plan`` call; the
        report-history percentiles aggregate this.
    n_chunks:
        ``_run_core`` invocations this call made: 1 for a 2-D multiply,
        the chunk count for a batched stack.  One report always covers
        the *whole* call — ``ipc_bytes`` summed and
        ``peak_workspace_bytes`` high-watered across chunks — so batched
        callers never see a single chunk's numbers.
    io_bytes:
        Logical bytes the tiled lowering moved between the RAM strip
        window and the mmap-spilled buffers (analytic — see
        ``_tiled_io_stats``; summed across chunks).  0 off the tiled
        path.
    n_tiles:
        Row strips the tiled lowering streamed (one per product group x
        Morton strip; summed across chunks).  0 off the tiled path.
    tile_window_bytes:
        RAM bytes of the tiled strip window — the byte-exact twin of
        ``predict_tile_window_bytes`` and the bound the measured
        ``peak_workspace_bytes`` satisfies on the tiled path
        (high-watered across chunks).  0 off the tiled path.
    """

    shape: tuple[int, int, int]
    batch: int
    variant: str
    fusion: str
    threads: int
    core_path: str
    n_tasks: int
    peak_workspace_bytes: int
    backend: str = "reference"
    backend_path: str = "interpreted"
    kernel_cached: bool | None = None
    worker_mode: str = "serial"
    n_workers: int = 1
    ipc_bytes: int = 0
    schedule: str = ""
    dtype: str = "float64"
    duration_s: float = 0.0
    n_chunks: int = 1
    io_bytes: int = 0
    n_tiles: int = 0
    tile_window_bytes: int = 0


_report_tls = threading.local()


def last_report() -> ExecutionReport | None:
    """The :class:`ExecutionReport` of this thread's most recent
    ``execute_plan``.

    Thread-local on purpose: concurrent executions each read back their
    own report, never a neighbor's.  That same property makes it the
    *wrong* API across threads — a service client that submitted a job
    and reads ``last_report()`` from its own thread observes whatever
    that thread last executed (usually nothing), not its job.  Per-job
    reports are routed exclusively through the bounded history instead:
    the serving layer records each job's report under its job id
    (``repro.obs.reports.record_job``), and ``JobHandle.report()`` /
    ``repro.obs.reports.report_for(job_id)`` look it up race-free.
    """
    return getattr(_report_tls, "report", None)


def _publish_report(report: ExecutionReport) -> None:
    _report_tls.report = report
    # The bounded history (repro.obs.reports) is the canonical record;
    # the thread-local above stays as the "my last call" convenience.
    obs_reports.record(report)
    _m_executions.inc()
    if report.duration_s > 0.0:
        _m_latency.observe(report.duration_s)
    if report.io_bytes > 0:
        _m_io_bytes.inc(report.io_bytes)


# ---------------------------------------------------------------------- #
# Execution
# ---------------------------------------------------------------------- #
def check_exec_shapes(cplan: CompiledPlan, A, B, C) -> None:
    """Validate (possibly batched) operands against a compiled plan."""
    m, k, n = cplan.shape
    if A.shape[-2:] != (m, k) or B.shape[-2:] != (k, n) or C.shape[-2:] != (m, n):
        raise ValueError(
            f"operands A {A.shape}, B {B.shape}, C {C.shape} do not match "
            f"compiled plan shape {(m, k, n)}"
        )
    if not (A.shape[:-2] == B.shape[:-2] == C.shape[:-2]):
        raise ValueError(
            f"batch dims disagree: A {A.shape}, B {B.shape}, C {C.shape}"
        )


def execute_plan(
    cplan: CompiledPlan,
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    threads: int = 1,
    vector_cap: int = DEFAULT_VECTOR_CAP,
    chunk_target: int = DEFAULT_CHUNK_TARGET,
    arena=None,
    leaf=None,
    fusion: str | None = None,
    backend: str | None = None,
    workers: str | None = None,
) -> np.ndarray:
    """Execute ``C += A @ B`` under a compiled plan on ``threads`` workers.

    Operands may be 2-D or batched ``(batch, rows, cols)`` stacks whose
    trailing dims match the plan.  ``threads=1`` runs the same task
    schedule inline; ``threads>1`` fans phases out over the shared worker
    pool.  ``workers`` selects the pool kind: ``"threads"`` (default)
    shares the caller's address space (and its GIL); ``"processes"``
    fans the same phases out over the persistent worker-process pool
    (:mod:`repro.core.procpool`), staging operands and the C accumulator
    through shared-memory segments — workers rebuild the identical
    bindings over bit-identical operand copies, so a process execution
    is bitwise-equal to the thread execution at the same worker count.
    ``backend`` selects the leaf-kernel backend by registry name
    (:mod:`repro.kernels`; default ``"reference"``): a compiling backend
    serves the core with a per-plan specialized kernel when it can and
    delegates to the interpreted pipeline when it cannot — behavior is
    identical either way and the report records what ran.  ``leaf`` swaps
    the per-product kernel (the blocked engine passes
    :class:`repro.core.variants.BlisProductLeaf`); every custom leaf
    executes on the fused per-product pipeline — the staged slab phases
    are pure-NumPy math that would bypass its kernel — and is mutually
    exclusive with a non-reference ``backend`` and with
    ``workers="processes"`` (its kernel state lives in this process).
    ``fusion`` overrides the plan's resolved lowering mode (benchmarks
    compare ``"staged"`` vs ``"fused"`` on the same plan this way).
    ``arena`` overrides the global workspace arena (tests).

    Every call publishes an :class:`ExecutionReport` — including the
    measured peak workspace bytes, the executing worker mode and the
    shared-memory traffic — retrievable via :func:`last_report`.
    """
    threads = int(threads)
    if threads < 1:
        raise ValueError("threads must be >= 1")
    worker_mode = normalize_workers(workers) or "threads"
    check_exec_shapes(cplan, A, B, C)
    arena = arena if arena is not None else workspace_arena
    backend_name = normalize_backend(backend)
    if leaf is not None and backend_name != "reference":
        raise ValueError(
            "a custom leaf kernel executes on the reference pipeline; "
            f"it cannot be combined with backend={backend_name!r}"
        )
    if leaf is not None and leaf is not NUMPY_LEAF and worker_mode == "processes":
        raise ValueError(
            "a custom leaf kernel executes in this process; it cannot be "
            'combined with workers="processes"'
        )
    backend_obj = kernel_backends.get_backend(backend_name)
    leaf = backend_obj.leaf() if leaf is None else leaf
    pp = cplan.peel_plan
    fusion_eff = validate_resolved_fusion(
        cplan.fusion if fusion is None else fusion
    )
    if leaf is not NUMPY_LEAF:
        # The staged slab phases (and the per-step fallback) compute with
        # pure-NumPy math and would silently bypass a custom kernel, so
        # every custom leaf executes on the fused per-product pipeline —
        # its product() is always honored.
        fusion_eff = "fused"

    use_procs = worker_mode == "processes" and threads > 1
    batch = int(math.prod(A.shape[:-2])) if A.ndim > 2 else 1
    core_path = "none"
    backend_path = "interpreted"
    kernel_cached = None
    n_tasks = 0
    steps_bytes = 0
    ipc_bytes = 0
    io_bytes = 0
    n_tiles = 0
    tile_window = 0
    n_chunks = 0
    core_pooled = False
    t_start = time.perf_counter()
    # Entered/exited by hand so the 120-line body below keeps its
    # indentation; the span brackets exactly the metered region.
    exec_span = obs_trace.span(
        "execute_plan", "runtime",
        shape=f"{cplan.shape[0]}x{cplan.shape[1]}x{cplan.shape[2]}",
        batch=batch, fusion=fusion_eff, backend=backend_name,
        threads=threads, workers=worker_mode,
    )
    exec_span.__enter__()
    meter = arena.start_meter()
    try:
        kernel_entry = None
        if (pp.has_core and backend_name != "reference" and not use_procs
                and fusion_eff != "tiled"):
            # Compiled kernels execute in this process (their buffers are
            # process-local), so the process mode always interprets — and
            # so does the tiled lowering, whose spilled slabs and strip
            # window only the interpreted pipeline knows how to drive.
            kernel_entry = backend_obj.kernel_for(
                cplan, A, B, C, fusion_eff, threads, vector_cap
            )
        if kernel_entry is not None:
            # The backend compiled (or cached) a whole-core kernel for
            # this exact call; fringes stay with the serial peel loop
            # below, exactly like the steps fallback.
            core_path = "kernel"
            backend_path = kernel_entry.path
            kernel_cached = kernel_entry.hits > 0
            steps_bytes = kernel_entry.workspace_bytes
            core_pooled = threads > 1
            kernel_entry.run(A, B, C)
        elif pp.has_core:
            mp, kp, np_ = pp.core
            Mt, Kt, Nt = cplan.dims_total
            bm, bk, bn = mp // Mt, kp // Kt, np_ // Nt
            Ac = A[..., :mp, :kp]
            Bc = B[..., :kp, :np_]
            Cc = C[..., :mp, :np_]
            per_product = bm * bk + bk * bn + bm * bn
            # The arena path computes in the plan dtype; when C cannot
            # absorb that (e.g. integer operands fed straight to the
            # engine), the per-step loop preserves the operand dtype for
            # +-1-coefficient algorithms exactly like the classic engine
            # did.  Custom leaves own their dtype handling.
            on_graph = leaf is not NUMPY_LEAF or np.can_cast(
                cplan.dtype, C.dtype, casting="same_kind"
            )
            if on_graph and fusion_eff == "staged":
                on_graph = cplan.rank_total * per_product <= vector_cap
            if on_graph:
                core_path = "graph"
                # Only the built-in NumPy leaf takes the gathered
                # group-streaming shortcut; every custom leaf runs the
                # generic per-product pipeline so its kernel and
                # instrumentation are always honored.
                gathered = fusion_eff == "staged" or leaf is NUMPY_LEAF
                graph = lower_plan(cplan, threads, fusion_eff, gathered)
                n_tasks = graph.n_tasks
                proc_pool = procpool.get_process_pool(threads) if use_procs else None
                pool = get_pool(threads) if threads > 1 and not use_procs else None
                core_pooled = threads > 1
                core_phases = [p for p in graph.phases if p[0].kind != "fringe"]
                n_slots = max(graph.n_slots, 1)
                group = min(effective_fused_group(), cplan.rank_total)
                leaf.begin(n_slots)
                try:
                    if Ac.ndim == 3 and not leaf.supports_batch:
                        for b in range(Ac.shape[0]):
                            ipc, shm, io, nt, win = _run_core(
                                cplan, Ac[b], Bc[b], Cc[b], bm, bk, bn,
                                core_phases, pool, arena, fusion_eff,
                                gathered, n_slots, group, leaf, proc_pool,
                            )
                            ipc_bytes += ipc
                            steps_bytes = max(steps_bytes, shm)
                            io_bytes += io
                            n_tiles += nt
                            tile_window = max(tile_window, win)
                            n_chunks += 1
                    elif Ac.ndim == 3:
                        # Chunk so the live intermediates stay near
                        # chunk_target elements: staged slabs scale with
                        # R, fused/tiled group buffers with the group —
                        # the fused pipeline's memory bound holds for
                        # batched stacks too.
                        if fusion_eff == "staged":
                            work = per_product * cplan.rank_total
                        else:
                            work = per_product * group
                        chunk = max(
                            1, min(Ac.shape[0], chunk_target // max(work, 1))
                        )
                        for i in range(0, Ac.shape[0], chunk):
                            ipc, shm, io, nt, win = _run_core(
                                cplan, Ac[i : i + chunk], Bc[i : i + chunk],
                                Cc[i : i + chunk], bm, bk, bn,
                                core_phases, pool, arena, fusion_eff,
                                gathered, n_slots, group, leaf, proc_pool,
                            )
                            ipc_bytes += ipc
                            steps_bytes = max(steps_bytes, shm)
                            io_bytes += io
                            n_tiles += nt
                            tile_window = max(tile_window, win)
                            n_chunks += 1
                    else:
                        n_chunks = 1
                        (ipc_bytes, steps_bytes, io_bytes, n_tiles,
                         tile_window) = _run_core(
                            cplan, Ac, Bc, Cc, bm, bk, bn,
                            core_phases, pool, arena, fusion_eff,
                            gathered, n_slots, group, leaf, proc_pool,
                        )
                finally:
                    leaf.finish()
                # Fringe C regions are mutually disjoint (see peeling), so
                # the fringe phase parallelizes like any other — unless
                # the leaf's instrumentation is not concurrency-safe.
                fb = _FringeBinding(pp.fringes, A, B, C, leaf)
                fringe_pool = pool if leaf.parallel_fringe else None
                for phase in (p for p in graph.phases if p[0].kind == "fringe"):
                    _run_phase(fb, phase, fringe_pool)
            else:
                core_path = "steps"
                _log.debug(
                    "per-step serial fallback for %s (vector cap or "
                    "non-castable C dtype)", cplan.shape,
                )
                # The fallback allocates its per-step S/T/M with plain
                # numpy, outside the metered arena; report its analytic
                # live footprint (one product's buffers) so the staged
                # fallback never shows as using *less* memory than the
                # graph pipelines.
                steps_bytes = (
                    per_product
                    * batch
                    * np.result_type(Ac, Bc).itemsize
                )
                _run_steps(cplan, Ac, Bc, Cc, bm, bk, bn)
        if core_path != "graph":
            fb = _FringeBinding(pp.fringes, A, B, C, leaf)
            for i, f in enumerate(pp.fringes):
                if 0 in f.shape:
                    continue
                fb.run(Task("fringe", i, i + 1))
    finally:
        peak = max(arena.finish_meter(meter), steps_bytes)
        exec_span.set(core_path=core_path, peak_bytes=peak)
        exec_span.__exit__(None, None, None)
    if not core_pooled:
        worker_mode_eff = "serial"
    elif use_procs:
        worker_mode_eff = "processes"
    else:
        worker_mode_eff = "threads"
    _publish_report(ExecutionReport(
        shape=cplan.shape,
        batch=batch,
        variant=cplan.variant,
        fusion=fusion_eff,
        threads=threads,
        core_path=core_path,
        n_tasks=n_tasks,
        peak_workspace_bytes=peak,
        backend=backend_name,
        backend_path=backend_path,
        kernel_cached=kernel_cached,
        worker_mode=worker_mode_eff,
        n_workers=threads if core_pooled else 1,
        ipc_bytes=ipc_bytes,
        schedule=cplan.schedule_signature,
        dtype=cplan.dtype.name,
        duration_s=time.perf_counter() - t_start,
        n_chunks=max(n_chunks, 1),
        io_bytes=io_bytes,
        n_tiles=n_tiles,
        tile_window_bytes=tile_window,
    ))
    return C


def _run_core(
    cplan, Ac, Bc, Cc, bm, bk, bn, phases, pool, arena, fusion,
    gathered, n_slots, group, leaf, proc_pool=None,
):
    """Run one core (one batch chunk).

    Returns ``(ipc_bytes, shm_bytes, io_bytes, n_tiles,
    tile_window_bytes)`` — the last three are 0 off the tiled path.
    """
    if proc_pool is not None:
        return _run_core_processes(
            cplan, Ac, Bc, Cc, bm, bk, bn, phases, proc_pool, fusion,
            n_slots, group,
        )
    lead = Ac.shape[:-2]
    io = n_tiles = window = 0
    if fusion == "staged":
        ws = arena.acquire(
            (cplan.key, lead, "staged"),
            lambda: _staged_workspace_spec(cplan, lead, bm, bk, bn),
        )
        binding = _StagedBinding(cplan, Ac, Bc, Cc, bm, bk, bn, ws)
    elif fusion == "tiled":
        L = math.prod(lead) if lead else 1
        tile_rows = resolve_tile_rows(
            bm, bk, bn, n_slots, group, lead_elems=L,
            itemsize=cplan.dtype.itemsize,
            has_scratch=cplan.has_nonunit_c_coeffs,
        )
        ws = arena.acquire(
            (cplan.key, lead, "tiled", n_slots, group, tile_rows),
            lambda: _tiled_workspace_spec(
                cplan, lead, bm, bk, bn, n_slots, group, tile_rows
            ),
        )
        binding = _TiledBinding(
            cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots, group, tile_rows
        )
        ranges = [(t.lo, t.hi) for p in phases for t in p
                  if t.kind == "tile"]
        io, n_tiles = _tiled_io_stats(
            cplan, L, bm, bk, bn, n_slots, group, tile_rows, ranges
        )
        window = _tile_window_bytes(cplan, L, bn, n_slots, group, tile_rows)
    elif gathered:
        ws = arena.acquire(
            (cplan.key, lead, "grouped", n_slots, group),
            lambda: _grouped_workspace_spec(
                cplan, lead, bm, bk, bn, n_slots, group
            ),
        )
        binding = _GroupedFusedBinding(
            cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots, group
        )
    else:
        needs = tuple(leaf.needs_buffers)
        ws = arena.acquire(
            (cplan.key, lead, "fused", n_slots, needs),
            lambda: _fused_workspace_spec(
                cplan, lead, bm, bk, bn, n_slots, needs
            ),
        )
        binding = _FusedBinding(
            cplan, Ac, Bc, Cc, bm, bk, bn, ws, n_slots, leaf
        )
    try:
        for phase in phases:
            _run_phase(binding, phase, pool)
    finally:
        arena.release(ws)
    return 0, 0, io, n_tiles, window


def _run_core_processes(
    cplan, Ac, Bc, Cc, bm, bk, bn, phases, proc_pool, fusion,
    n_slots, group,
):
    """Run one core on the worker-process pool over shared memory.

    The parent copies the (possibly strided) core operand regions and the
    C accumulator into one packed shared segment, broadcasts the plan and
    a bind descriptor, then drives each phase as one task-list message
    per worker with a barrier on the acks.  Workers rebuild the *same*
    bindings over the shm views, so arithmetic — including the fused
    pipeline's slot-order ``Cacc`` reduce — matches the thread path task
    for task; the copy-in/copy-out round trip is exact, so the result is
    bitwise-equal to the thread execution at the same worker count.
    Returns ``(ipc_bytes, segment_bytes, io_bytes, n_tiles,
    tile_window_bytes)`` for the execution report.

    Tiled cores run here too — same strip schedule, same bits — but
    every workspace buffer (including the ``"mmap"``-flagged slabs) is
    staged in the shared segment, because workers can only share RAM
    pages: process-mode tiling bounds the *strip window* like the thread
    path while the slabs stay memory-resident, so it is not an
    out-of-core escape hatch (a documented limitation; use
    ``workers="threads"`` for larger-than-RAM operands).
    """
    lead = Ac.shape[:-2]
    tile_rows = 0
    if fusion == "staged":
        spec = _staged_workspace_spec(cplan, lead, bm, bk, bn)
        mode = "staged"
    elif fusion == "tiled":
        L = math.prod(lead) if lead else 1
        tile_rows = resolve_tile_rows(
            bm, bk, bn, n_slots, group, lead_elems=L,
            itemsize=cplan.dtype.itemsize,
            has_scratch=cplan.has_nonunit_c_coeffs,
        )
        spec = _tiled_workspace_spec(
            cplan, lead, bm, bk, bn, n_slots, group, tile_rows
        )
        mode = "tiled"
    else:
        spec = _grouped_workspace_spec(cplan, lead, bm, bk, bn, n_slots, group)
        mode = "grouped"
    entries = [
        ("Ac", Ac.shape, Ac.dtype),
        ("Bc", Bc.shape, Bc.dtype),
        ("Cc", Cc.shape, Cc.dtype),
    ] + [(name, entry[0], entry[1]) for name, entry in spec.items()]
    layout, total = pack_layout(entries)
    seg_key = (cplan.key, lead, mode, n_slots, group, tile_rows,
               Ac.dtype.str, Bc.dtype.str, Cc.dtype.str)
    n_workers = proc_pool.max_workers
    tracing = obs_trace.is_enabled()
    with proc_pool.session():
        seg = shared_arena.acquire(seg_key, total)
        try:
            views = seg.views(layout)
            with obs_trace.span("ipc.stage_in", "ipc",
                                bytes=Ac.nbytes + Bc.nbytes + Cc.nbytes):
                views["Ac"][...] = Ac
                views["Bc"][...] = Bc
                views["Cc"][...] = Cc
            plan_token = proc_pool.broadcast_plan(cplan)
            proc_pool.bind({
                "plan_key": plan_token,
                "segment": seg.name,
                "layout": layout,
                "mode": mode,
                "bm": bm, "bk": bk, "bn": bn,
                "n_slots": n_slots, "group": group,
                "tile_rows": tile_rows,
                "trace": tracing,
            })
            for phase in phases:
                assignments: list[list] = [[] for _ in range(n_workers)]
                for i, t in enumerate(phase):
                    assignments[i % n_workers].append(
                        (t.kind, t.lo, t.hi, t.slot)
                    )
                kind = phase[0].kind
                with obs_trace.span("phase:" + kind, "phase",
                                    tasks=len(phase), mode="processes"):
                    worker_spans = proc_pool.run_phase(assignments)
                # Workers drain their local rings onto the run acks;
                # merging here keeps one coherent multi-process timeline.
                if tracing and worker_spans:
                    for batch_recs in worker_spans:
                        if batch_recs:
                            obs_trace.ingest(batch_recs)
            proc_pool.unbind()
            with obs_trace.span("ipc.copy_out", "ipc", bytes=Cc.nbytes):
                Cc[...] = views["Cc"]
        finally:
            shared_arena.release(seg)
    io = n_tiles = window = 0
    if fusion == "tiled":
        L = math.prod(lead) if lead else 1
        ranges = [(t.lo, t.hi) for p in phases for t in p
                  if t.kind == "tile"]
        io, n_tiles = _tiled_io_stats(
            cplan, L, bm, bk, bn, n_slots, group, tile_rows, ranges
        )
        window = _tile_window_bytes(cplan, L, bn, n_slots, group, tile_rows)
    return Ac.nbytes + Bc.nbytes + 2 * Cc.nbytes, total, io, n_tiles, window


# ---------------------------------------------------------------------- #
# Serial memory-light fallback (huge staged cores / non-castable C)
# ---------------------------------------------------------------------- #
def _run_steps(cplan, Ac, Bc, Cc, bm, bk, bn) -> None:
    """Per-product loop over the plan's gather lists (bounded workspace)."""
    Av = cplan.block_views(Ac, "A", bm, bk)
    Bv = cplan.block_views(Bc, "B", bk, bn)
    Cv = cplan.block_views(Cc, "C", bm, bn)
    lead = Ac.shape[:-2]
    dt = np.result_type(Ac, Bc)
    for s in cplan.steps:
        S = _vsum(s.a_terms, Av, lead + (bm, bk), dt)
        T = _vsum(s.b_terms, Bv, lead + (bk, bn), dt)
        M = S @ T
        for i, w in s.c_terms:
            if w == 1:
                Cv[i] += M
            elif w == -1:
                Cv[i] -= M
            else:
                Cv[i] += w * M


def _vsum(terms, views, shape, dtype):
    """Sparse weighted sum of views; coefficients stay python floats so
    NEP-50 scalar promotion cannot upcast float32 intermediates."""
    out = None
    for i, c in terms:
        v = views[i]
        if out is None:
            if c == 1 or c == -1:
                out = v.astype(dtype, copy=True)
                if c == -1:
                    np.negative(out, out)
            else:
                out = v * c
        elif c == 1:
            out += v
        elif c == -1:
            out -= v
        else:
            out += c * v
    if out is None:
        out = np.zeros(shape, dtype=dtype)
    return out
