"""Task-graph parallel runtime over the :class:`CompiledPlan` IR.

The paper's multicore results (§5.1/§5.3, Figs. 9–10) come from *running*
the generated implementations on real cores; until this module the repo
only modeled that scaling (:mod:`repro.core.parallel`).  Here a compiled
plan is lowered once into an explicit task DAG and executed on a reusable
worker pool, so ``multiply(..., threads=N)`` uses N cores for real:

* **gather** tasks copy the recursive blocks of ``A``/``B`` into the
  contiguous arena slabs ``A~``/``B~`` (a range of blocks per task);
* **product** tasks compute a range of coefficient products ``M_r``:
  ``S = Ut A~``, ``T = Vt B~`` (row-sliced matmuls into the arena) and the
  batched ``M = S @ T``;
* **scatter** tasks own disjoint ranges of destination blocks of ``C`` —
  each computes ``upd = W M`` for its rows and accumulates into its own
  blocks, so C updates are write-conflict-free by construction;
* **fringe** tasks run the dynamic-peeling GEMMs (their C regions are
  mutually disjoint; they run after the core barrier because the k-fringe
  overlaps the core's output).

Phases are separated by barriers; tasks within a phase are independent.
``threads=1`` executes the *same* schedule inline — the serial engines are
just the 1-worker special case, not a separate code path.  Worker pools
are process-wide and reused across calls (:func:`get_pool`), and every
temporary lives in the recycling workspace arena
(:mod:`repro.core.workspace`), so repeated same-plan multiplies allocate
nothing on the hot path.

Fallbacks (both serial, both documented limits of the arena path): cores
whose stacked intermediates exceed ``vector_cap`` run the memory-light
per-step loop, as does a destination dtype that cannot absorb the plan
dtype (e.g. integer ``C``).
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.compile import CompiledPlan
from repro.core.workspace import workspace_arena

__all__ = [
    "Task",
    "TaskGraph",
    "lower_plan",
    "execute_plan",
    "get_pool",
    "pool_info",
    "shutdown_pools",
    "DEFAULT_VECTOR_CAP",
    "DEFAULT_CHUNK_TARGET",
]

#: Per-element stacked-intermediate bound for the arena path (elements).
DEFAULT_VECTOR_CAP = 1 << 24
#: Intermediate-size target for slicing batches into cache-resident chunks.
DEFAULT_CHUNK_TARGET = 1 << 17


# ---------------------------------------------------------------------- #
# Reusable worker pools
# ---------------------------------------------------------------------- #
_pool_lock = threading.Lock()
_pools: dict[int, ThreadPoolExecutor] = {}


def get_pool(workers: int) -> ThreadPoolExecutor:
    """The process-wide pool with ``workers`` threads (created on first use).

    Pools persist for the life of the process and are shared by every
    execution requesting the same worker count — no per-call pool spin-up
    or teardown.
    """
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    with _pool_lock:
        pool = _pools.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-rt{workers}"
            )
            _pools[workers] = pool
        return pool


def pool_info() -> dict[int, int]:
    """``{workers: max_workers}`` of every live pool (for tests/telemetry)."""
    with _pool_lock:
        return {w: p._max_workers for w, p in _pools.items()}


def shutdown_pools() -> None:
    """Shut down and drop every pooled executor."""
    with _pool_lock:
        pools = list(_pools.values())
        _pools.clear()
    for p in pools:
        p.shutdown(wait=True)


# ---------------------------------------------------------------------- #
# Lowering: CompiledPlan -> TaskGraph
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Task:
    """One schedulable unit: a half-open ``[lo, hi)`` range of one kind.

    Kinds: ``gather_a``/``gather_b`` (operand block ranges), ``product``
    (step ranges over ``r``), ``scatter`` (destination block ranges),
    ``fringe`` (peel-fringe indices).
    """

    kind: str
    lo: int
    hi: int


@dataclass(frozen=True)
class TaskGraph:
    """The lowered schedule of one plan for one worker count.

    ``phases`` are executed in order with a barrier between consecutive
    phases; tasks inside a phase are mutually independent (disjoint writes)
    and may run concurrently.
    """

    key: tuple
    workers: int
    phases: tuple[tuple[Task, ...], ...]

    @property
    def n_tasks(self) -> int:
        return sum(len(p) for p in self.phases)


def _split(total: int, parts: int) -> list[tuple[int, int]]:
    """Balanced half-open ranges covering ``[0, total)`` (no empty ranges)."""
    parts = max(1, min(parts, total))
    step, rem = divmod(total, parts)
    ranges, lo = [], 0
    for i in range(parts):
        hi = lo + step + (1 if i < rem else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


_graph_lock = threading.Lock()
_graphs: dict[tuple, TaskGraph] = {}
_GRAPH_CACHE_MAX = 256


def lower_plan(cplan: CompiledPlan, workers: int = 1) -> TaskGraph:
    """Lower a compiled plan to its task DAG for ``workers`` workers.

    Pure metadata (index ranges only — no arrays), memoized per
    ``(plan key, workers)``.
    """
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    key = (cplan.key, workers)
    with _graph_lock:
        hit = _graphs.get(key)
        if hit is not None:
            return hit

    Pa = len(cplan.a_table)
    Pb = len(cplan.b_table)
    Pc = len(cplan.c_table)
    R = cplan.rank_total
    phases: list[tuple[Task, ...]] = []
    if cplan.peel_plan.has_core:
        gather = [Task("gather_a", lo, hi) for lo, hi in _split(Pa, workers)]
        gather += [Task("gather_b", lo, hi) for lo, hi in _split(Pb, workers)]
        phases.append(tuple(gather))
        phases.append(tuple(Task("product", lo, hi) for lo, hi in _split(R, workers)))
        phases.append(tuple(Task("scatter", lo, hi) for lo, hi in _split(Pc, workers)))
    fringes = [
        Task("fringe", i, i + 1)
        for i, f in enumerate(cplan.peel_plan.fringes)
        if 0 not in f.shape
    ]
    if fringes:
        phases.append(tuple(fringes))
    graph = TaskGraph(key=key, workers=workers, phases=tuple(phases))
    with _graph_lock:
        graph = _graphs.setdefault(key, graph)
        while len(_graphs) > _GRAPH_CACHE_MAX:
            _graphs.pop(next(iter(_graphs)))
    return graph


# ---------------------------------------------------------------------- #
# Execution
# ---------------------------------------------------------------------- #
class _CoreBinding:
    """Binds one task graph to concrete operand views and arena buffers.

    All reshapes below are views of C-contiguous arena slabs, and every
    matmul writes through ``out=`` — the hot path performs no temporary
    allocation.
    """

    __slots__ = (
        "cplan", "Av", "Bv", "Cv", "L",
        "Ablk", "Bblk", "A2", "B2", "S2", "T2", "S3", "T3", "M3", "M2",
        "upd", "upd2",
    )

    def __init__(self, cplan, Ac, Bc, Cc, bm, bk, bn, ws):
        self.cplan = cplan
        self.Av = cplan.block_views(Ac, "A", bm, bk)
        self.Bv = cplan.block_views(Bc, "B", bk, bn)
        self.Cv = cplan.block_views(Cc, "C", bm, bn)
        self.L = math.prod(Ac.shape[:-2])
        R = cplan.rank_total
        self.Ablk = ws["Ablk"]
        self.Bblk = ws["Bblk"]
        self.A2 = self.Ablk.reshape(len(self.Av), -1)
        self.B2 = self.Bblk.reshape(len(self.Bv), -1)
        S, T, M = ws["S"], ws["T"], ws["M"]
        self.S2 = S.reshape(R, -1)
        self.T2 = T.reshape(R, -1)
        self.S3 = S.reshape(-1, bm, bk)
        self.T3 = T.reshape(-1, bk, bn)
        self.M3 = M.reshape(-1, bm, bn)
        self.M2 = M.reshape(R, -1)
        self.upd = ws["upd"]
        self.upd2 = self.upd.reshape(self.upd.shape[0], -1)

    def run(self, task: Task) -> None:
        kind, lo, hi = task.kind, task.lo, task.hi
        if kind == "gather_a":
            np.stack(self.Av[lo:hi], out=self.Ablk[lo:hi])
        elif kind == "gather_b":
            np.stack(self.Bv[lo:hi], out=self.Bblk[lo:hi])
        elif kind == "product":
            cp, L = self.cplan, self.L
            np.matmul(cp.Ut[lo:hi], self.A2, out=self.S2[lo:hi])
            np.matmul(cp.Vt[lo:hi], self.B2, out=self.T2[lo:hi])
            np.matmul(
                self.S3[lo * L : hi * L],
                self.T3[lo * L : hi * L],
                out=self.M3[lo * L : hi * L],
            )
        elif kind == "scatter":
            np.matmul(self.cplan.W[lo:hi], self.M2, out=self.upd2[lo:hi])
            for p in range(lo, hi):
                self.Cv[p] += self.upd[p]
        else:  # pragma: no cover - lowering emits only the kinds above
            raise ValueError(f"unknown task kind {kind!r}")


def _run_fringe(f, A, B, C) -> None:
    C[..., f.c_rows, f.c_cols] += (
        A[..., f.a_rows, f.a_cols] @ B[..., f.b_rows, f.b_cols]
    )


class _FringeBinding:
    """Binds fringe tasks to the full operands (no arena buffers needed)."""

    __slots__ = ("fringes", "A", "B", "C")

    def __init__(self, fringes, A, B, C):
        self.fringes = fringes
        self.A, self.B, self.C = A, B, C

    def run(self, task: Task) -> None:
        _run_fringe(self.fringes[task.lo], self.A, self.B, self.C)


def _run_phase(binding, tasks, pool) -> None:
    if pool is None or len(tasks) == 1:
        for t in tasks:
            binding.run(t)
    else:
        # list() is the barrier: it drains the map and re-raises worker
        # exceptions before the next phase may start.
        list(pool.map(binding.run, tasks))


def _workspace_spec(cplan, lead, bm, bk, bn):
    dt = cplan.dtype
    R = cplan.rank_total
    return {
        "Ablk": ((len(cplan.a_table),) + lead + (bm, bk), dt),
        "Bblk": ((len(cplan.b_table),) + lead + (bk, bn), dt),
        "S": ((R,) + lead + (bm, bk), dt),
        "T": ((R,) + lead + (bk, bn), dt),
        "M": ((R,) + lead + (bm, bn), dt),
        "upd": ((len(cplan.c_table),) + lead + (bm, bn), dt),
    }


def check_exec_shapes(cplan: CompiledPlan, A, B, C) -> None:
    """Validate (possibly batched) operands against a compiled plan."""
    m, k, n = cplan.shape
    if A.shape[-2:] != (m, k) or B.shape[-2:] != (k, n) or C.shape[-2:] != (m, n):
        raise ValueError(
            f"operands A {A.shape}, B {B.shape}, C {C.shape} do not match "
            f"compiled plan shape {(m, k, n)}"
        )
    if not (A.shape[:-2] == B.shape[:-2] == C.shape[:-2]):
        raise ValueError(
            f"batch dims disagree: A {A.shape}, B {B.shape}, C {C.shape}"
        )


def execute_plan(
    cplan: CompiledPlan,
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    threads: int = 1,
    vector_cap: int = DEFAULT_VECTOR_CAP,
    chunk_target: int = DEFAULT_CHUNK_TARGET,
    arena=None,
) -> np.ndarray:
    """Execute ``C += A @ B`` under a compiled plan on ``threads`` workers.

    Operands may be 2-D or batched ``(batch, rows, cols)`` stacks whose
    trailing dims match the plan.  ``threads=1`` runs the same task
    schedule inline; ``threads>1`` fans phases out over the shared worker
    pool.  ``arena`` overrides the global workspace arena (tests).
    """
    threads = int(threads)
    if threads < 1:
        raise ValueError("threads must be >= 1")
    check_exec_shapes(cplan, A, B, C)
    arena = arena if arena is not None else workspace_arena
    pp = cplan.peel_plan

    core_on_graph = False
    if pp.has_core:
        mp, kp, np_ = pp.core
        Mt, Kt, Nt = cplan.dims_total
        bm, bk, bn = mp // Mt, kp // Kt, np_ // Nt
        Ac = A[..., :mp, :kp]
        Bc = B[..., :kp, :np_]
        Cc = C[..., :mp, :np_]
        work = cplan.rank_total * (bm * bk + bk * bn + bm * bn)
        # The arena path computes in the plan dtype; when C cannot absorb
        # that (e.g. integer operands fed straight to the engine), the
        # per-step loop preserves the operand dtype for +-1-coefficient
        # algorithms exactly like the classic engine did.
        core_on_graph = (
            np.can_cast(cplan.dtype, C.dtype, casting="same_kind")
            and work <= vector_cap
        )
        if core_on_graph:
            graph = lower_plan(cplan, threads)
            pool = get_pool(threads) if threads > 1 else None
            core_phases = [p for p in graph.phases if p[0].kind != "fringe"]
            if Ac.ndim == 3:
                batch = Ac.shape[0]
                chunk = max(1, min(batch, chunk_target // max(work, 1)))
                for i in range(0, batch, chunk):
                    _run_core(
                        cplan, Ac[i : i + chunk], Bc[i : i + chunk],
                        Cc[i : i + chunk], bm, bk, bn,
                        core_phases, pool, arena,
                    )
            else:
                _run_core(cplan, Ac, Bc, Cc, bm, bk, bn, core_phases, pool, arena)
            # Fringe C regions are mutually disjoint (see peeling), so the
            # fringe phase parallelizes like any other.
            fb = _FringeBinding(pp.fringes, A, B, C)
            for phase in (p for p in graph.phases if p[0].kind == "fringe"):
                _run_phase(fb, phase, pool)
        else:
            _run_steps(cplan, Ac, Bc, Cc, bm, bk, bn)
    if not core_on_graph:
        for f in pp.fringes:
            if 0 in f.shape:
                continue
            _run_fringe(f, A, B, C)
    return C


def _run_core(cplan, Ac, Bc, Cc, bm, bk, bn, phases, pool, arena):
    lead = Ac.shape[:-2]
    ws = arena.acquire(
        (cplan.key, lead),
        lambda: _workspace_spec(cplan, lead, bm, bk, bn),
    )
    try:
        binding = _CoreBinding(cplan, Ac, Bc, Cc, bm, bk, bn, ws)
        for phase in phases:
            _run_phase(binding, phase, pool)
    finally:
        arena.release(ws)


# ---------------------------------------------------------------------- #
# Serial memory-light fallback (huge cores / non-castable C)
# ---------------------------------------------------------------------- #
def _run_steps(cplan, Ac, Bc, Cc, bm, bk, bn) -> None:
    """Per-product loop over the plan's gather lists (bounded workspace)."""
    Av = cplan.block_views(Ac, "A", bm, bk)
    Bv = cplan.block_views(Bc, "B", bk, bn)
    Cv = cplan.block_views(Cc, "C", bm, bn)
    lead = Ac.shape[:-2]
    dt = np.result_type(Ac, Bc)
    for s in cplan.steps:
        S = _vsum(s.a_terms, Av, lead + (bm, bk), dt)
        T = _vsum(s.b_terms, Bv, lead + (bk, bn), dt)
        M = S @ T
        for i, w in s.c_terms:
            if w == 1:
                Cv[i] += M
            elif w == -1:
                Cv[i] -= M
            else:
                Cv[i] += w * M


def _vsum(terms, views, shape, dtype):
    """Sparse weighted sum of views; coefficients stay python floats so
    NEP-50 scalar promotion cannot upcast float32 intermediates."""
    out = None
    for i, c in terms:
        v = views[i]
        if out is None:
            if c == 1 or c == -1:
                out = v.astype(dtype, copy=True)
                if c == -1:
                    np.negative(out, out)
            else:
                out = v * c
        elif c == 1:
            out += v
        elif c == -1:
            out -= v
        else:
            out += c * v
    if out is None:
        out = np.zeros(shape, dtype=dtype)
    return out
