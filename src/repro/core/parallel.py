"""Parallel execution analysis: the paper's §5.1/§5.3 multicore story.

Two sides of the same figures:

* **Modeled** — :func:`scaling_curve` / :func:`parallel_efficiency` price
  the generated implementations with the machine model (arithmetic divides
  by cores, DRAM bandwidth saturates at the socket), reproducing the
  flattened curves of Figs. 9–10 without touching hardware.
* **Measured** — :func:`measured_scaling_curve` drives the real task-graph
  runtime (:mod:`repro.core.runtime`) at each thread count and reports
  wall-clock speedup on *this* machine, so modeled and measured scaling
  can finally be plotted side by side
  (``benchmarks/bench_parallel_runtime.py`` /
  ``benchmarks/bench_fig10_multicore.py``).

:func:`pick_threads` turns the modeled curve into the thread count that
``multiply(engine="auto")`` uses.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.blis.simulator import simulate_time
from repro.core.kronecker import MultiLevelFMM
from repro.model.machines import MachineParams, ivy_bridge_e5_2680_v2
from repro.model.perfmodel import effective_gflops

__all__ = [
    "ScalingPoint",
    "scaling_curve",
    "measured_scaling_curve",
    "parallel_efficiency",
    "pick_threads",
    "pick_workers",
    "bandwidth_bound_fraction",
]


@dataclass(frozen=True)
class ScalingPoint:
    cores: int
    time: float
    gflops: float
    speedup: float
    efficiency: float


def scaling_curve(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM | None,
    variant: str = "abc",
    max_cores: int = 10,
    machine_factory=ivy_bridge_e5_2680_v2,
) -> list[ScalingPoint]:
    """Modeled strong-scaling curve for one problem and implementation.

    ``machine_factory(cores)`` must return a :class:`MachineParams`; the
    default is the paper's testbed, whose bandwidth stops scaling at about
    five cores — the contention that flattens Figs. 9–10.
    """
    base = simulate_time(m, k, n, ml, variant, machine_factory(1))
    out = []
    for c in range(1, max_cores + 1):
        t = simulate_time(m, k, n, ml, variant, machine_factory(c))
        out.append(
            ScalingPoint(
                cores=c,
                time=t,
                gflops=effective_gflops(m, k, n, t),
                speedup=base / t,
                efficiency=base / t / c,
            )
        )
    return out


def measured_scaling_curve(
    m: int,
    k: int,
    n: int,
    algorithm="strassen",
    levels: int = 1,
    variant: str = "abc",
    threads_list=(1, 2, 4),
    engine: str = "direct",
    repeats: int = 3,
    dtype=np.float64,
    seed: int = 0,
    workers: str | None = None,
) -> list[ScalingPoint]:
    """Measured strong-scaling of the task-graph runtime on this machine.

    Runs ``multiply(..., threads=t)`` for each ``t`` in ``threads_list``
    (best-of-``repeats`` wall-clock; the first entry — conventionally 1 —
    is the speedup baseline).  Unlike :func:`scaling_curve` nothing here is
    modeled: this is the real runtime on real cores, including one warm-up
    call per thread count so plan compilation and arena allocation stay
    out of the timings.  ``workers`` selects the runtime's worker mode
    (``"threads"``/``"processes"``), so the thread and process curves of
    one problem can be measured side by side.
    """
    from repro.core.executor import multiply

    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, k)).astype(dtype, copy=False)
    B = rng.standard_normal((k, n)).astype(dtype, copy=False)
    C = np.zeros((m, n), dtype=dtype)
    out: list[ScalingPoint] = []
    base = None
    for t in threads_list:
        multiply(A, B, C, algorithm=algorithm, levels=levels,
                 variant=variant, engine=engine, threads=t,
                 workers=workers)  # warm-up
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            multiply(A, B, C, algorithm=algorithm, levels=levels,
                     variant=variant, engine=engine, threads=t,
                     workers=workers)
            best = min(best, time.perf_counter() - t0)
        if base is None:
            base = best
        out.append(
            ScalingPoint(
                cores=int(t),
                time=best,
                gflops=effective_gflops(m, k, n, best),
                speedup=base / best,
                efficiency=base / best / int(t),
            )
        )
    return out


def pick_threads(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM | None,
    variant: str = "abc",
    max_threads: int | None = None,
    machine_factory=ivy_bridge_e5_2680_v2,
    min_efficiency: float = 0.6,
    min_flops: float = 2.0 * 256**3,
) -> int:
    """Model-guided thread count for one problem (used by auto-dispatch).

    Walks the modeled scaling curve up to ``min(os.cpu_count(),
    max_threads)`` cores and returns the largest count whose modeled
    parallel efficiency stays above ``min_efficiency`` — adding cores past
    the bandwidth knee buys nothing.  Problems under ``min_flops`` total
    flops stay serial: at that scale Python-side task overhead would eat
    any modeled gain.
    """
    avail = os.cpu_count() or 1
    cap = min(avail, max_threads) if max_threads else avail
    if cap <= 1 or 2.0 * m * k * n < min_flops:
        return 1
    best = 1
    for p in scaling_curve(m, k, n, ml, variant, cap, machine_factory):
        if p.efficiency >= min_efficiency:
            best = p.cores
    return best


def pick_workers(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM | None,
    variant: str = "abc",
    threads: int | None = None,
    machine_factory=ivy_bridge_e5_2680_v2,
    dtype=np.float64,
) -> str:
    """Model-guided worker mode for one problem (the :func:`pick_threads` twin).

    Prices the thread runtime's GIL-capped scaling against the process
    runtime's GIL-free scaling plus its IPC costs
    (:func:`repro.model.perfmodel.predict_worker_times`) at the thread
    count auto-dispatch would use (``threads=None`` re-derives it via
    :func:`pick_threads`).  Serial execution is either mode at one
    worker, so a serial pick returns ``"threads"`` — the mode with no
    spawn cost.
    """
    p = (
        int(threads)
        if threads is not None
        else pick_threads(m, k, n, ml, variant, machine_factory=machine_factory)
    )
    if p <= 1:
        return "threads"
    from repro.model.perfmodel import predict_worker_times

    t_serial = simulate_time(m, k, n, ml, variant, machine_factory(1))
    tasks = 3 * ml.rank_total if ml is not None else 8
    t_thread, t_proc = predict_worker_times(
        m, k, n, t_serial, p, tasks=tasks, dtype=dtype
    )
    return "processes" if t_proc < t_thread else "threads"


def parallel_efficiency(
    m: int, k: int, n: int,
    ml: MultiLevelFMM | None,
    variant: str,
    cores: int,
    machine_factory=ivy_bridge_e5_2680_v2,
) -> float:
    """Speedup at ``cores`` divided by ``cores`` (modeled)."""
    pts = scaling_curve(m, k, n, ml, variant, cores, machine_factory)
    return pts[-1].efficiency


def bandwidth_bound_fraction(
    m: int, k: int, n: int,
    ml: MultiLevelFMM | None,
    variant: str,
    machine: MachineParams,
) -> float:
    """Fraction of modeled time spent waiting on DRAM (0 = compute bound).

    The paper's rank-k panels at 10 cores sit near 1.0; large square GEMM
    near 0.  Useful for predicting when adding cores stops helping.
    """
    from repro.blis.simulator import counters_to_time, simulate_fmm, simulate_gemm

    if ml is None:
        c = simulate_gemm(m, k, n, machine.blocking)
    else:
        c = simulate_fmm(m, k, n, ml, variant, machine.blocking)
    total = counters_to_time(c, machine)
    mem = c.dram_elements(machine.lam) * machine.tau_b
    return mem / total if total > 0 else 0.0
