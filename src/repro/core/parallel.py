"""Parallel execution analysis: the paper's §5.1/§5.3 multicore story.

The generated implementations parallelize the 3rd loop around the
micro-kernel with simple data parallelism [20] — implemented in
:class:`~repro.core.executor.BlockedEngine` via ``threads=N``.  This module
adds the *analysis* side: modeled scaling curves (arithmetic divides by
cores, DRAM bandwidth saturates at the socket), parallel efficiency, and a
measured thread-scaling probe for the Python engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blis.simulator import simulate_time
from repro.core.kronecker import MultiLevelFMM
from repro.model.machines import MachineParams, ivy_bridge_e5_2680_v2
from repro.model.perfmodel import effective_gflops

__all__ = [
    "ScalingPoint",
    "scaling_curve",
    "parallel_efficiency",
    "bandwidth_bound_fraction",
]


@dataclass(frozen=True)
class ScalingPoint:
    cores: int
    time: float
    gflops: float
    speedup: float
    efficiency: float


def scaling_curve(
    m: int,
    k: int,
    n: int,
    ml: MultiLevelFMM | None,
    variant: str = "abc",
    max_cores: int = 10,
    machine_factory=ivy_bridge_e5_2680_v2,
) -> list[ScalingPoint]:
    """Modeled strong-scaling curve for one problem and implementation.

    ``machine_factory(cores)`` must return a :class:`MachineParams`; the
    default is the paper's testbed, whose bandwidth stops scaling at about
    five cores — the contention that flattens Figs. 9–10.
    """
    base = simulate_time(m, k, n, ml, variant, machine_factory(1))
    out = []
    for c in range(1, max_cores + 1):
        t = simulate_time(m, k, n, ml, variant, machine_factory(c))
        out.append(
            ScalingPoint(
                cores=c,
                time=t,
                gflops=effective_gflops(m, k, n, t),
                speedup=base / t,
                efficiency=base / t / c,
            )
        )
    return out


def parallel_efficiency(
    m: int, k: int, n: int,
    ml: MultiLevelFMM | None,
    variant: str,
    cores: int,
    machine_factory=ivy_bridge_e5_2680_v2,
) -> float:
    """Speedup at ``cores`` divided by ``cores`` (modeled)."""
    pts = scaling_curve(m, k, n, ml, variant, cores, machine_factory)
    return pts[-1].efficiency


def bandwidth_bound_fraction(
    m: int, k: int, n: int,
    ml: MultiLevelFMM | None,
    variant: str,
    machine: MachineParams,
) -> float:
    """Fraction of modeled time spent waiting on DRAM (0 = compute bound).

    The paper's rank-k panels at 10 cores sit near 1.0; large square GEMM
    near 0.  Useful for predicting when adding cores stops helping.
    """
    from repro.blis.simulator import counters_to_time, simulate_fmm, simulate_gemm

    if ml is None:
        c = simulate_gemm(m, k, n, machine.blocking)
    else:
        c = simulate_fmm(m, k, n, ml, variant, machine.blocking)
    total = counters_to_time(c, machine)
    mem = c.dram_elements(machine.lam) * machine.tau_b
    return mem / total if total > 0 else 0.0
