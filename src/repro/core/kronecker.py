"""Multi-level FMM composition via Kronecker products (paper §3.4–3.5).

An L-level FMM algorithm applies a (possibly different) ``<m~_l, k~_l,
n~_l>`` algorithm at every level of recursion.  With recursive-block operand
indexing, its coefficients are simply the Kronecker products of the
per-level coefficients — which turns the recursion into a flat loop over
``R_L = prod R_l`` products (eq. (5)).  :class:`MultiLevelFMM` carries the
level list and lazily materializes the composed coefficients.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.fmm import FMMAlgorithm, nnz

__all__ = ["MultiLevelFMM"]


class MultiLevelFMM:
    """An L-level (possibly hybrid) FMM algorithm.

    Parameters
    ----------
    levels:
        The per-level one-level algorithms, outermost first.  A homogeneous
        L-level Strassen is ``MultiLevelFMM([strassen()] * L)``.

    Notes
    -----
    Coefficient row indices refer to *recursive-block* (Morton-like)
    ordering of the operand partitions; :func:`repro.core.morton.block_views`
    produces views in exactly that order.
    """

    def __init__(self, levels: list[FMMAlgorithm] | tuple[FMMAlgorithm, ...]):
        if not levels:
            raise ValueError("need at least one level")
        self.levels: tuple[FMMAlgorithm, ...] = tuple(levels)

    # ------------------------------------------------------------------ #
    @property
    def L(self) -> int:
        return len(self.levels)

    @property
    def dims_total(self) -> tuple[int, int, int]:
        """``(M~_L, K~_L, N~_L)`` — the products of per-level partition dims."""
        m = k = n = 1
        for a in self.levels:
            m *= a.m
            k *= a.k
            n *= a.n
        return m, k, n

    @property
    def rank_total(self) -> int:
        """``R_L = prod_l R_l`` — number of submatrix multiplications."""
        r = 1
        for a in self.levels:
            r *= a.rank
        return r

    @property
    def name(self) -> str:
        return " (x) ".join(a.name for a in self.levels)

    def grids(self, operand: str) -> list[tuple[int, int]]:
        """Per-level partition grids for operand 'A', 'B' or 'C'."""
        if operand == "A":
            return [(a.m, a.k) for a in self.levels]
        if operand == "B":
            return [(a.k, a.n) for a in self.levels]
        if operand == "C":
            return [(a.m, a.n) for a in self.levels]
        raise ValueError(f"operand must be A, B or C, not {operand!r}")

    # ------------------------------------------------------------------ #
    @cached_property
    def U(self) -> np.ndarray:
        """Composed ``(prod m_l k_l) x R_L`` coefficients (recursive order)."""
        return _kron_all([a.U for a in self.levels])

    @cached_property
    def V(self) -> np.ndarray:
        return _kron_all([a.V for a in self.levels])

    @cached_property
    def W(self) -> np.ndarray:
        return _kron_all([a.W for a in self.levels])

    @cached_property
    def columns(self) -> list[tuple]:
        """Per-product sparse operand lists.

        Entry ``r`` is ``(a_idx, a_coef, b_idx, b_coef, c_idx, c_coef)``
        with the nonzero row indices and coefficients of column ``r`` of the
        composed U, V, W — the exact operand lists of eq. (5) that the
        engines and the code generator consume.
        """
        cols = []
        for r in range(self.rank_total):
            u = self.U[:, r]
            v = self.V[:, r]
            w = self.W[:, r]
            ai = np.nonzero(u)[0]
            bi = np.nonzero(v)[0]
            ci = np.nonzero(w)[0]
            cols.append((ai, u[ai], bi, v[bi], ci, w[ci]))
        return cols

    def nnz_uvw(self) -> tuple[int, int, int]:
        """``nnz`` of the composed coefficients (performance-model inputs)."""
        return (nnz(self.U), nnz(self.V), nnz(self.W))

    def theoretical_speedup(self) -> float:
        """Arithmetic-count speedup over classical for the full L levels."""
        m, k, n = self.dims_total
        return (m * k * n) / self.rank_total

    def __repr__(self) -> str:
        m, k, n = self.dims_total
        return (
            f"MultiLevelFMM(L={self.L}, <{m},{k},{n}>, R={self.rank_total}, "
            f"levels=[{self.name}])"
        )


def _kron_all(mats: list[np.ndarray]) -> np.ndarray:
    out = mats[0]
    for M in mats[1:]:
        out = np.kron(out, M)
    return np.ascontiguousarray(out)
