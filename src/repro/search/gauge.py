"""Gauge (symmetry-group) sparsification of CP decompositions.

The matmul tensor ``T_{m,k,n}`` is invariant under the action of
``GL(m) x GL(k) x GL(n)``: with nonsingular ``(X, Y, Z)`` the substitution
``A -> X A Y``, ``B -> Y^-1 B Z``, ``Cbar -> X^-T Cbar Z^-T`` preserves the
trilinear form ``trace(A B Cbar^T)``.  Tracking the per-column factor
matrices through that substitution gives an *exact* map between rank-R
decompositions:

    U_r -> X^T  U_r Y^T,    V_r -> Y^-T V_r Z^T,    W_r -> X^-1 W_r Z^-1

(``U_r = reshape(U[:, r], (m, k))`` etc.).  A generic ALS solution is a
generic point of its orbit — dense, irrational-looking.  De Groote proved
the rank-7 decompositions of ``<2,2,2>`` form a *single* orbit, so some
gauge maps any ALS solution onto Strassen exactly; for larger shapes a
gauge can usually reach a discrete representative when the orbit contains
one.  This module finds sparsifying gauges by minimizing a smooth-L1/2
(Charbonnier) objective over ``(X, Y, Z)``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

__all__ = ["apply_gauge", "gauge_objective", "sparsify_gauge"]


def apply_gauge(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    m: int,
    k: int,
    n: int,
    X: np.ndarray,
    Y: np.ndarray,
    Z: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply the symmetry ``(X, Y, Z)`` to a decomposition — exactly rank-safe."""
    R = U.shape[1]
    Um = U.reshape(m, k, R)
    Vm = V.reshape(k, n, R)
    Wm = W.reshape(m, n, R)
    invX = np.linalg.inv(X)
    invY = np.linalg.inv(Y)
    invZ = np.linalg.inv(Z)
    U2 = np.einsum("ia,ijr,bj->abr", X, Um, Y).reshape(m * k, R)
    V2 = np.einsum("ia,ijr,bj->abr", invY, Vm, Z).reshape(k * n, R)
    W2 = np.einsum("ai,ijr,jb->abr", invX, Wm, invZ).reshape(m * n, R)
    return U2, V2, W2


def _charbonnier(x: np.ndarray, eps: float) -> float:
    return float(np.sum(np.sqrt(x * x + eps * eps) - eps))


def gauge_objective(
    params: np.ndarray,
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    m: int,
    k: int,
    n: int,
    eps: float,
) -> float:
    """Smooth sparsity objective of the gauged factors.

    Near-singular gauges blow up the inverse-transformed factors, so the
    objective is its own barrier; a large penalty is returned when the
    matrices are numerically singular.
    """
    X = params[: m * m].reshape(m, m)
    Y = params[m * m : m * m + k * k].reshape(k, k)
    Z = params[m * m + k * k :].reshape(n, n)
    for M in (X, Y, Z):
        if abs(np.linalg.det(M)) < 1e-8:
            return 1e12
    U2, V2, W2 = apply_gauge(U, V, W, m, k, n, X, Y, Z)
    return _charbonnier(U2, eps) + _charbonnier(V2, eps) + _charbonnier(W2, eps)


def sparsify_gauge(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    m: int,
    k: int,
    n: int,
    rng: np.random.Generator,
    restarts: int = 4,
    eps_schedule: tuple[float, ...] = (0.1, 0.01, 0.001),
    maxiter: int = 400,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Search ``GL(m) x GL(k) x GL(n)`` for a gauge that sparsifies (U, V, W).

    Runs a few random restarts of Powell/L-BFGS minimization with an
    annealed Charbonnier epsilon and returns the sparsest gauged triple
    found (by the final objective).  The output decomposes the same tensor
    as the input up to floating-point error.
    """
    d = m * m + k * k + n * n
    best_obj = np.inf
    best = (U, V, W)
    for restart in range(restarts):
        if restart == 0:
            x0 = np.concatenate(
                [np.eye(m).ravel(), np.eye(k).ravel(), np.eye(n).ravel()]
            )
        else:
            x0 = np.concatenate(
                [np.eye(m).ravel(), np.eye(k).ravel(), np.eye(n).ravel()]
            ) + 0.4 * rng.standard_normal(d)
        x = x0
        for eps in eps_schedule:
            sol = minimize(
                gauge_objective,
                x,
                args=(U, V, W, m, k, n, eps),
                method="L-BFGS-B",
                options={"maxiter": maxiter},
            )
            x = sol.x
        obj = gauge_objective(x, U, V, W, m, k, n, eps_schedule[-1])
        if obj < best_obj:
            best_obj = obj
            X = x[: m * m].reshape(m, m)
            Y = x[m * m : m * m + k * k].reshape(k, k)
            Z = x[m * m + k * k :].reshape(n, n)
            best = apply_gauge(U, V, W, m, k, n, X, Y, Z)
    return best
