"""Brent equations for fast matrix multiplication algorithms.

An FMM algorithm for the ``<m, k, n>`` partitioning is a triple of
coefficient matrices ``(U, V, W)`` with shapes ``(m*k, R)``, ``(k*n, R)``
and ``(m*n, R)``.  The algorithm computes ``C += A @ B`` via

    M_r = (sum_i U[i, r] * A_i) @ (sum_j V[j, r] * B_j)
    C_p += W[p, r] * M_r

where ``A_i``, ``B_j`` and ``C_p`` index the partition blocks of the three
operands in *row-major* order (paper, eq. (3)).

Such a triple is a correct matrix multiplication algorithm if and only if it
satisfies the Brent equations: the rank-R CP decomposition

    sum_r U[:, r] (x) V[:, r] (x) W[:, r]  ==  T_{m,k,n}

where ``T_{m,k,n}`` is the matrix multiplication tensor defined below.  This
module builds the tensor, evaluates residuals, and provides the exact
verification predicate that gates every algorithm admitted to the catalog.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

__all__ = [
    "matmul_tensor",
    "brent_residual_tensor",
    "brent_max_residual",
    "brent_frobenius_residual",
    "verify_brent",
    "verify_brent_exact",
]


def matmul_tensor(m: int, k: int, n: int, dtype=np.float64) -> np.ndarray:
    """Return the ``<m, k, n>`` matrix multiplication tensor.

    The tensor ``T`` has shape ``(m*k, k*n, m*n)``.  With row-major block
    indices ``i = i1*k + i2`` (over A), ``j = j1*n + j2`` (over B) and
    ``p = p1*n + p2`` (over C),

        T[i, j, p] = 1  iff  i2 == j1 and i1 == p1 and j2 == p2

    i.e. exactly when ``A_{i1,i2} * B_{j1,j2}`` contributes to ``C_{p1,p2}``
    in the classical product.
    """
    if m < 1 or k < 1 or n < 1:
        raise ValueError(f"partition dims must be positive, got {(m, k, n)}")
    T = np.zeros((m * k, k * n, m * n), dtype=dtype)
    for i1 in range(m):
        for i2 in range(k):
            for j2 in range(n):
                T[i1 * k + i2, i2 * n + j2, i1 * n + j2] = 1
    return T


def _cp_reconstruct(U: np.ndarray, V: np.ndarray, W: np.ndarray) -> np.ndarray:
    """Evaluate ``sum_r U[:,r] (x) V[:,r] (x) W[:,r]`` as a dense tensor."""
    return np.einsum("ir,jr,pr->ijp", U, V, W, optimize=True)


def brent_residual_tensor(
    U: np.ndarray, V: np.ndarray, W: np.ndarray, m: int, k: int, n: int
) -> np.ndarray:
    """Residual tensor ``CP(U,V,W) - T_{m,k,n}``."""
    _check_shapes(U, V, W, m, k, n)
    return _cp_reconstruct(U, V, W) - matmul_tensor(m, k, n)


def brent_max_residual(
    U: np.ndarray, V: np.ndarray, W: np.ndarray, m: int, k: int, n: int
) -> float:
    """Maximum absolute entry of the Brent residual."""
    return float(np.max(np.abs(brent_residual_tensor(U, V, W, m, k, n))))


def brent_frobenius_residual(
    U: np.ndarray, V: np.ndarray, W: np.ndarray, m: int, k: int, n: int
) -> float:
    """Frobenius norm of the Brent residual."""
    return float(np.linalg.norm(brent_residual_tensor(U, V, W, m, k, n)))


def verify_brent(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    m: int,
    k: int,
    n: int,
    tol: float = 1e-10,
) -> bool:
    """True iff ``(U, V, W)`` satisfies the Brent equations within ``tol``."""
    return brent_max_residual(U, V, W, m, k, n) <= tol


def verify_brent_exact(
    U: np.ndarray, V: np.ndarray, W: np.ndarray, m: int, k: int, n: int
) -> bool:
    """Exact rational verification of the Brent equations.

    Entries are converted to :class:`fractions.Fraction` via
    ``Fraction(x).limit_denominator(2**16)``; the check is exact for
    coefficient triples whose entries are small rationals (every triple this
    package ships).  Irrational or high-denominator entries make the
    conversion lossy, in which case this predicate correctly reports the
    rounded triple as invalid rather than giving a false positive.
    """
    _check_shapes(U, V, W, m, k, n)
    R = U.shape[1]
    Uf = _to_fractions(U)
    Vf = _to_fractions(V)
    Wf = _to_fractions(W)
    T = matmul_tensor(m, k, n)
    for i in range(m * k):
        for j in range(k * n):
            for p in range(m * n):
                s = Fraction(0)
                for r in range(R):
                    uf = Uf[i][r]
                    if not uf:
                        continue
                    vf = Vf[j][r]
                    if not vf:
                        continue
                    s += uf * vf * Wf[p][r]
                if s != Fraction(int(T[i, j, p])):
                    return False
    return True


def _to_fractions(X: np.ndarray) -> list[list[Fraction]]:
    return [
        [Fraction(float(x)).limit_denominator(2**16) for x in row] for row in X
    ]


def _check_shapes(
    U: np.ndarray, V: np.ndarray, W: np.ndarray, m: int, k: int, n: int
) -> None:
    if U.ndim != 2 or V.ndim != 2 or W.ndim != 2:
        raise ValueError("U, V, W must be 2-D coefficient matrices")
    R = U.shape[1]
    if V.shape[1] != R or W.shape[1] != R:
        raise ValueError(
            f"rank mismatch: U has {R} columns, V {V.shape[1]}, W {W.shape[1]}"
        )
    expect = {"U": (m * k, R), "V": (k * n, R), "W": (m * n, R)}
    got = {"U": U.shape, "V": V.shape, "W": W.shape}
    for name in ("U", "V", "W"):
        if got[name] != expect[name]:
            raise ValueError(
                f"{name} has shape {got[name]}, expected {expect[name]} "
                f"for <{m},{k},{n}>"
            )
