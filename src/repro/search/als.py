"""Regularized alternating least squares (CP-ALS) for matmul tensors.

Benson & Ballard [1] found their family of practical FMM algorithms with
numerical low-rank CP decompositions of the ``<m,k,n>`` matrix
multiplication tensor.  This module reimplements that substrate: ridge-
regularized ALS with annealing, optional soft-threshold sparsification,
and a Levenberg–Marquardt polish (scipy) that drives near-solutions to
machine precision before discretization (:mod:`repro.search.rounding`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.search.brent import matmul_tensor

__all__ = ["AlsResult", "khatri_rao", "als_decompose", "lm_polish"]


@dataclass
class AlsResult:
    """Outcome of one ALS run."""

    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    residual: float  # Frobenius norm of CP(U,V,W) - T
    iterations: int
    converged: bool


def khatri_rao(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Column-wise Kronecker product: ``Z[:, r] = kron(X[:, r], Y[:, r])``."""
    I, R = X.shape
    J, R2 = Y.shape
    if R != R2:
        raise ValueError("khatri_rao: column count mismatch")
    return (X[:, None, :] * Y[None, :, :]).reshape(I * J, R)


def _residual_fro(T1: np.ndarray, U, V, W) -> float:
    return float(np.linalg.norm(T1 - U @ khatri_rao(V, W).T))


def _ridge_solve(A: np.ndarray, B: np.ndarray, mu: float) -> np.ndarray:
    """Solve ``X A = B`` for X with ridge term: ``X = B A^T (A A^T + mu I)^-1``."""
    R = A.shape[0]
    G = A @ A.T + mu * np.eye(R)
    return np.linalg.solve(G, A @ B.T).T


def als_decompose(
    m: int,
    k: int,
    n: int,
    rank: int,
    rng: np.random.Generator,
    max_iter: int = 2500,
    mu_start: float = 5e-2,
    mu_end: float = 1e-9,
    tol: float = 1e-11,
    sparsify_every: int = 0,
    sparsify_eps: float = 0.05,
    init_scale: float = 0.7,
    init: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    clip: float | None = None,
) -> AlsResult:
    """One randomized ALS run against the ``<m,k,n>`` tensor at ``rank``.

    The ridge parameter ``mu`` is annealed geometrically from ``mu_start`` to
    ``mu_end`` over the iterations; annealing keeps early iterations well
    conditioned (the normal equations of a matmul-tensor CP problem are
    notoriously rank-deficient) while letting late iterations converge
    tightly.  If ``sparsify_every > 0``, entries below ``sparsify_eps`` are
    zeroed periodically, nudging solutions toward discrete coefficients.
    """
    T = matmul_tensor(m, k, n)
    I, J, P = T.shape
    T1 = T.reshape(I, J * P)
    T2 = T.transpose(1, 0, 2).reshape(J, I * P)
    T3 = T.transpose(2, 0, 1).reshape(P, I * J)

    if init is not None:
        U, V, W = (np.array(X, dtype=np.float64, copy=True) for X in init)
    else:
        U = rng.choice([-1.0, 0.0, 1.0], size=(I, rank)) + init_scale * rng.standard_normal((I, rank))
        V = rng.choice([-1.0, 0.0, 1.0], size=(J, rank)) + init_scale * rng.standard_normal((J, rank))
        W = rng.choice([-1.0, 0.0, 1.0], size=(P, rank)) + init_scale * rng.standard_normal((P, rank))

    decay = (mu_end / mu_start) ** (1.0 / max(max_iter - 1, 1))
    mu = mu_start
    res = np.inf
    for it in range(1, max_iter + 1):
        U = _ridge_solve(khatri_rao(V, W).T, T1, mu)
        V = _ridge_solve(khatri_rao(U, W).T, T2, mu)
        W = _ridge_solve(khatri_rao(U, V).T, T3, mu)
        if sparsify_every and it % sparsify_every == 0:
            for X in (U, V, W):
                X[np.abs(X) < sparsify_eps] = 0.0
        if clip is not None:
            U = np.clip(U, -clip, clip)
            V = np.clip(V, -clip, clip)
            W = np.clip(W, -clip, clip)
        mu *= decay
        if it % 25 == 0 or it == max_iter:
            res = _residual_fro(T1, U, V, W)
            if res < tol:
                return AlsResult(U, V, W, res, it, True)
            if not np.isfinite(res):
                break
    res = _residual_fro(T1, U, V, W)
    return AlsResult(U, V, W, res, max_iter, bool(res < tol))


def lm_polish(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    m: int,
    k: int,
    n: int,
    max_nfev: int = 400,
) -> AlsResult:
    """Levenberg–Marquardt refinement of a near-solution.

    ALS stagnates in shallow "swamps"; a few hundred trust-region
    least-squares steps on the full variable vector typically take a
    1e-3-residual iterate to machine precision when it sits in the basin of
    an exact decomposition.
    """
    T = matmul_tensor(m, k, n)
    I, J, P = T.shape
    R = U.shape[1]
    t = T.ravel()
    nu, nv = I * R, J * R

    def unpack(x):
        return (
            x[:nu].reshape(I, R),
            x[nu : nu + nv].reshape(J, R),
            x[nu + nv :].reshape(P, R),
        )

    def fun(x):
        u, v, w = unpack(x)
        return (np.einsum("ir,jr,pr->ijp", u, v, w) - T).ravel()

    def jac(x):
        u, v, w = unpack(x)
        Jm = np.zeros((t.size, x.size))
        # d/dU[i,r] of entry (i,j,p) = V[j,r] W[p,r]
        vw = khatri_rao(v, w)  # (J*P, R)
        uw = khatri_rao(u, w)  # (I*P, R)
        uv = khatri_rao(u, v)  # (I*J, R)
        for i in range(I):
            rows = slice(i * J * P, (i + 1) * J * P)
            Jm[rows, i * R : (i + 1) * R] = vw
        for j in range(J):
            for r in range(R):
                Jm[
                    (np.arange(I)[:, None] * J * P + j * P + np.arange(P)[None, :]).ravel(),
                    nu + j * R + r,
                ] = uw[:, r]
        for p in range(P):
            for r in range(R):
                Jm[
                    (np.arange(I)[:, None] * J * P + np.arange(J)[None, :] * P + p).ravel(),
                    nu + nv + p * R + r,
                ] = uv[:, r]
        return Jm

    x0 = np.concatenate([U.ravel(), V.ravel(), W.ravel()])
    method = "lm" if t.size >= x0.size else "trf"
    sol = least_squares(
        fun, x0, jac=jac, method=method, max_nfev=max_nfev,
        ftol=1e-15, xtol=1e-15, gtol=1e-15,
    )
    u, v, w = unpack(sol.x)
    res = float(np.linalg.norm(fun(sol.x)))
    return AlsResult(u, v, w, res, int(sol.nfev), bool(res < 1e-11))
