"""Search orchestration: restarts, polish, discretize, fall back.

``discover(m, k, n, rank)`` runs randomized ALS restarts against the
``<m,k,n>`` tensor, polishes promising iterates with Levenberg–Marquardt,
and attempts discretization.  It returns the best verified
:class:`~repro.core.fmm.FMMAlgorithm` found, preferring exact discrete
triples over float triples (which are accepted only below a strict
residual threshold and flagged in their ``source``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.fmm import FMMAlgorithm
from repro.search.als import als_decompose, lm_polish
from repro.search.fixing import incremental_rounding
from repro.search.gauge import sparsify_gauge
from repro.search.rounding import discretize, normalize_columns, snap

__all__ = ["DiscoveryReport", "discover", "quantize_anneal"]

# An ALS iterate is worth polishing once its Frobenius residual drops here.
_POLISH_THRESHOLD = 5e-1
# A float triple is accepted as a (flagged) algorithm below this residual.
_FLOAT_ACCEPT = 1e-11


@dataclass
class DiscoveryReport:
    """Statistics from a :func:`discover` call (for logs and tests)."""

    m: int
    k: int
    n: int
    rank: int
    restarts: int = 0
    polished: int = 0
    best_residual: float = np.inf
    elapsed: float = 0.0
    found: str = "none"  # none | float | exact
    history: list[float] = field(default_factory=list)


def quantize_anneal(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    m: int,
    k: int,
    n: int,
    rng: np.random.Generator,
    phases: int = 14,
    iters_per_phase: int = 200,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Anneal a float CP solution onto the discrete coefficient grid.

    The matmul tensor's symmetry group is continuous, so an exact float
    solution generically has irrational-looking entries.  Each phase blends
    the gauge-normalized factors toward their snapped values with an
    increasing mixing weight, then lets a short low-ridge ALS re-converge.
    If the blend lands in the attraction basin of a discrete representative,
    the trailing :func:`~repro.search.rounding.discretize` call certifies it.
    """
    cur = normalize_columns(U, V, W)
    for gamma in np.linspace(0.2, 1.0, phases):
        blended = []
        for X in cur:
            S, _ = snap(X)
            blended.append((1.0 - gamma) * X + gamma * S)
        res = als_decompose(
            m, k, n, U.shape[1], rng,
            max_iter=iters_per_phase,
            mu_start=1e-6, mu_end=1e-10,
            init=tuple(blended), clip=4.0,
        )
        if not np.isfinite(res.residual):
            return None
        cur = normalize_columns(res.U, res.V, res.W)
        if res.residual < 1e-7:
            got = discretize(cur[0], cur[1], cur[2], m, k, n)
            if got is not None:
                return got
    return None


def discover(
    m: int,
    k: int,
    n: int,
    rank: int,
    max_restarts: int = 50,
    time_budget: float = 120.0,
    seed: int = 0,
    als_iters: int = 2500,
    verbose: bool = False,
) -> tuple[FMMAlgorithm | None, DiscoveryReport]:
    """Search for an ``<m,k,n>`` algorithm of the given rank.

    Deterministic for a fixed ``seed`` and budget on a given platform.
    Returns ``(algorithm_or_None, report)``.
    """
    rng = np.random.default_rng(seed)
    report = DiscoveryReport(m=m, k=k, n=n, rank=rank)
    t0 = time.perf_counter()
    best_float: FMMAlgorithm | None = None

    for restart in range(max_restarts):
        if time.perf_counter() - t0 > time_budget:
            break
        report.restarts += 1
        sparsify = 0 if restart % 2 == 0 else 100
        res = als_decompose(
            m, k, n, rank, rng,
            max_iter=als_iters,
            sparsify_every=sparsify,
        )
        report.history.append(res.residual)
        report.best_residual = min(report.best_residual, res.residual)
        if verbose:
            print(
                f"  restart {restart}: als residual {res.residual:.3e}"
                f" ({'sparsified' if sparsify else 'plain'})"
            )
        if not np.isfinite(res.residual) or res.residual > _POLISH_THRESHOLD:
            continue

        report.polished += 1
        # LM builds a dense Jacobian in Python: affordable only for small
        # variable counts.  Big shapes polish with a low-ridge ALS tail.
        if (m * k + k * n + m * n) * rank <= 1200:
            pol = lm_polish(res.U, res.V, res.W, m, k, n)
        else:
            pol = als_decompose(
                m, k, n, rank, rng,
                max_iter=3000, mu_start=1e-8, mu_end=1e-12,
                init=(res.U, res.V, res.W),
            )
        report.best_residual = min(report.best_residual, pol.residual)
        if verbose:
            print(f"    polished -> {pol.residual:.3e}")
        if pol.residual > 1e-8:
            continue

        # Gauge-sparsify onto (near) a discrete orbit representative, then
        # certify by snapping / incremental rounding.
        disc = discretize(pol.U, pol.V, pol.W, m, k, n)
        if disc is None:
            Ug, Vg, Wg = sparsify_gauge(pol.U, pol.V, pol.W, m, k, n, rng)
            disc = discretize(Ug, Vg, Wg, m, k, n)
            if disc is None:
                fix = incremental_rounding(
                    *normalize_columns(Ug, Vg, Wg), m, k, n
                )
                disc = fix.factors
        if disc is not None:
            algo = FMMAlgorithm(
                m=m, k=k, n=n, U=disc[0], V=disc[1], W=disc[2],
                name=f"<{m},{k},{n}>:{rank}",
                source=f"als-search(seed={seed},restart={restart},exact)",
            ).validate()
            report.found = "exact"
            report.elapsed = time.perf_counter() - t0
            return algo, report

        if pol.residual < _FLOAT_ACCEPT and best_float is None:
            best_float = FMMAlgorithm(
                m=m, k=k, n=n, U=pol.U, V=pol.V, W=pol.W,
                name=f"<{m},{k},{n}>:{rank}",
                source=f"als-search(seed={seed},restart={restart},float)",
            )

    report.elapsed = time.perf_counter() - t0
    if best_float is not None:
        report.found = "float"
        return best_float, report
    return None, report
