"""Incremental rounding: anneal a float CP solution onto discrete values.

Smirnov's recipe for extracting practical algorithms from numerical
decompositions: repeatedly *fix* the coefficients closest to a small grid of
nice rationals and re-solve a constrained least-squares problem for the
remaining free coefficients.  Because the CP objective is linear in each
factor, the constrained refit is a per-row least squares over the free
columns only.  When all entries are fixed and the residual is ~0, the triple
is discrete and is certified by exact rational verification upstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.search.als import khatri_rao
from repro.search.brent import matmul_tensor

__all__ = ["GRID", "incremental_rounding", "sparsify_zeros", "FixingResult"]

# Values observed in published practical FMM algorithms.
GRID = np.array([-2.0, -1.5, -1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 1.0, 1.5, 2.0])


def _snap_grid(X: np.ndarray, grid: np.ndarray) -> np.ndarray:
    idx = np.argmin(np.abs(X[..., None] - grid), axis=-1)
    return grid[idx]


@dataclass
class FixingResult:
    factors: tuple[np.ndarray, np.ndarray, np.ndarray] | None
    residual: float
    fixed_fraction: float
    rounds: int


def _constrained_sweep(
    unfoldings, factors, masks, mu: float, max_sweeps: int, target: float = 1e-12
) -> float:
    """ALS passes updating only unfixed entries, until converged or stalled.

    ``masks[f]`` is a boolean array, True where the entry is fixed.  Each
    row's free entries solve a ridge least squares against the residual left
    after the fixed entries' contribution.  Returns the final Frobenius
    residual.
    """
    # The Khatri-Rao factor pairs are recomputed lazily per factor update;
    # the residual is checked every few sweeps to allow early exit.
    res = prev = np.inf
    for sweep in range(max_sweeps):
        for f in range(3):
            X = factors[f]
            others = [factors[g] for g in range(3) if g != f]
            Z = khatri_rao(others[0], others[1])  # (cols, R)
            Tm = unfoldings[f]
            mask = masks[f]
            for i in range(X.shape[0]):
                free = ~mask[i]
                if not free.any():
                    continue
                rhs = Tm[i] - Z[:, mask[i]] @ X[i, mask[i]]
                Zf = Z[:, free]
                G = Zf.T @ Zf + mu * np.eye(Zf.shape[1])
                X[i, free] = np.linalg.solve(G, Zf.T @ rhs)
        if sweep % 5 == 4 or sweep == max_sweeps - 1:
            res = float(
                np.linalg.norm(
                    unfoldings[0]
                    - factors[0] @ khatri_rao(factors[1], factors[2]).T
                )
            )
            if res < target or res > 0.999 * prev:
                break
            prev = res
    return res


def incremental_rounding(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    m: int,
    k: int,
    n: int,
    grid: np.ndarray = GRID,
    mu: float = 1e-10,
    sweeps: int = 120,
    fix_tol: float = 0.01,
    fail_residual: float = 3e-4,
    max_rounds: int = 4000,
) -> FixingResult:
    """Greedy fix-and-refit rounding of a converged CP solution.

    Each round fixes a small batch of the free entries nearest the grid
    (capped at ~5% of the remaining free entries), snaps them, and re-solves
    the free entries.  If a batch breaks convergence, it is rolled back and
    the single closest entry is fixed instead; if even that fails the round
    aborts and the caller restarts from a different float solution.
    """
    T = matmul_tensor(m, k, n)
    I, J, P = T.shape
    unfoldings = (
        T.reshape(I, -1),
        T.transpose(1, 0, 2).reshape(J, -1),
        T.transpose(2, 0, 1).reshape(P, -1),
    )
    factors = [np.array(X, dtype=np.float64, copy=True) for X in (U, V, W)]
    masks = [np.zeros_like(X, dtype=bool) for X in factors]
    total = sum(X.size for X in factors)

    def free_count() -> int:
        return total - sum(int(msk.sum()) for msk in masks)

    def fix_batch(limit: int) -> list[tuple[int, int, int, float]]:
        """Snap up to ``limit`` nearest-to-grid free entries; return undo log."""
        cand: list[tuple[float, int, int, int]] = []
        for f in range(3):
            d = np.abs(factors[f] - _snap_grid(factors[f], grid))
            d[masks[f]] = np.inf
            flat = np.argsort(d, axis=None)[:limit]
            for pos in flat:
                i, r = np.unravel_index(pos, d.shape)
                if np.isfinite(d[i, r]):
                    cand.append((float(d[i, r]), f, int(i), int(r)))
        cand.sort()
        undo = []
        for dist, f, i, r in cand[:limit]:
            if dist > fix_tol and undo:
                break  # only the closest entry may exceed fix_tol
            undo.append((f, i, r, factors[f][i, r]))
            factors[f][i, r] = _snap_grid(np.array(factors[f][i, r]), grid)
            masks[f][i, r] = True
            if dist > fix_tol:
                break
        return undo

    def rollback(undo) -> None:
        for f, i, r, val in undo:
            factors[f][i, r] = val
            masks[f][i, r] = False

    rnd = 0
    while free_count() > 0 and rnd < max_rounds:
        rnd += 1
        batch = max(1, free_count() // 20)
        saved = [X.copy() for X in factors]
        undo = fix_batch(batch)
        res = _constrained_sweep(unfoldings, factors, masks, mu, sweeps)
        if np.isfinite(res) and res <= fail_residual:
            continue
        # Batch failed: roll back and retry with the single closest entry.
        rollback(undo)
        for f in range(3):
            factors[f][:] = saved[f]
        if len(undo) > 1:
            undo = fix_batch(1)
            res = _constrained_sweep(unfoldings, factors, masks, mu, sweeps)
            if np.isfinite(res) and res <= fail_residual:
                continue
            rollback(undo)
            for f in range(3):
                factors[f][:] = saved[f]
        return FixingResult(None, float(res), 1 - free_count() / total, rnd)

    # Everything is fixed; report the final snapped residual.
    res = float(
        np.linalg.norm(
            unfoldings[0] - factors[0] @ khatri_rao(factors[1], factors[2]).T
        )
    )
    if res > 1e-9:
        return FixingResult(None, res, 1.0, rnd)
    return FixingResult(tuple(factors), res, 1.0, rnd)


def sparsify_zeros(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    m: int,
    k: int,
    n: int,
    zero_tol: float = 0.06,
    sweeps: int = 300,
    accept_residual: float = 1e-10,
    max_rounds: int = 40,
) -> FixingResult:
    """Partial rounding: pin only the near-zero entries, keep the rest float.

    Full discretization can fail when a decomposition's orbit holds no
    representative on the coefficient grid, but the *zero pattern* is much
    more robust — and nnz is what the performance model prices.  Each round
    zeroes the free entries within ``zero_tol`` of 0, re-solves the
    remaining float entries (constrained ALS), and stops when no further
    zeros appear or the residual degrades.
    """
    T = matmul_tensor(m, k, n)
    I, J, P = T.shape
    unfoldings = (
        T.reshape(I, -1),
        T.transpose(1, 0, 2).reshape(J, -1),
        T.transpose(2, 0, 1).reshape(P, -1),
    )
    factors = [np.array(X, dtype=np.float64, copy=True) for X in (U, V, W)]
    masks = [np.zeros_like(X, dtype=bool) for X in factors]
    total = sum(X.size for X in factors)
    best = None
    res = np.inf
    for rnd in range(1, max_rounds + 1):
        newly = 0
        for f in range(3):
            sel = (~masks[f]) & (np.abs(factors[f]) < zero_tol)
            newly += int(sel.sum())
            factors[f][sel] = 0.0
            masks[f] |= sel
        if newly == 0:
            break
        saved = [X.copy() for X in factors]
        saved_masks = [msk.copy() for msk in masks]
        res = _constrained_sweep(unfoldings, factors, masks, 1e-12, sweeps)
        if not np.isfinite(res) or res > accept_residual:
            factors = saved
            masks = saved_masks
            break
        best = tuple(X.copy() for X in factors)
    fixed = sum(int(msk.sum()) for msk in masks) / total
    if best is None:
        return FixingResult(None, float(res), fixed, 0)
    return FixingResult(best, float(res), fixed, rnd)
