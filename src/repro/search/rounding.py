"""Discretization of numerically-found CP factors.

A CP decomposition is invariant under per-column rescaling
``(u_r, v_r, w_r) -> (u_r/a, v_r/b, a*b*w_r)``, and the matmul tensor has a
large continuous symmetry group, so ALS solutions generally do *not* land on
the discrete representatives published in the literature.  Discretization
therefore combines three moves:

1. **gauge normalization** — rescale each rank-1 term so the largest entry
   of its U and V columns is +1 (fold scales into W);
2. **snap** — round entries to a small candidate set of rationals;
3. **refit** — given two snapped factors, the third is the solution of a
   *linear* least-squares problem; if the snapped pair extends to an exact
   decomposition the refit residual is ~1e-15 and the refit factor is the
   exact one.

The final gate is exact rational verification of the Brent equations, so a
wrong snap can never produce a corrupt algorithm.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.search.brent import matmul_tensor, verify_brent, verify_brent_exact

__all__ = [
    "DEFAULT_CANDIDATES",
    "normalize_columns",
    "snap",
    "refit_factor",
    "discretize",
]

DEFAULT_CANDIDATES: tuple[Fraction, ...] = tuple(
    sorted(
        {
            Fraction(0),
            *(
                s * Fraction(num, den)
                for s in (1, -1)
                for num, den in (
                    (1, 1), (2, 1), (3, 1), (4, 1),
                    (1, 2), (3, 2), (1, 4), (3, 4),
                    (1, 3), (2, 3), (4, 3),
                    (1, 8),
                )
            ),
        }
    )
)


def normalize_columns(
    U: np.ndarray, V: np.ndarray, W: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rescale every rank-1 term so max|U[:,r]| = max|V[:,r]| = 1.

    The scale is folded into W, preserving the CP sum exactly; the leading
    entry of each U and V column is made positive, collapsing the sign gauge.
    """
    U, V, W = U.copy(), V.copy(), W.copy()
    for r in range(U.shape[1]):
        for X in (U, V):
            idx = int(np.argmax(np.abs(X[:, r])))
            a = X[idx, r]
            if a == 0:
                continue
            X[:, r] /= a
            W[:, r] *= a
    return U, V, W


def snap(X: np.ndarray, candidates=DEFAULT_CANDIDATES, tol: float | None = None):
    """Round each entry to the nearest candidate value.

    Returns ``(snapped, max_move)``.  If ``tol`` is given and some entry
    moved further than ``tol``, ``snapped`` is still returned but callers
    should treat the snap as unreliable (checked via ``max_move``).
    """
    grid = np.array([float(c) for c in candidates])
    Xf = np.asarray(X, dtype=np.float64)
    idx = np.argmin(np.abs(Xf[..., None] - grid), axis=-1)
    snapped = grid[idx]
    max_move = float(np.max(np.abs(snapped - Xf))) if Xf.size else 0.0
    return snapped, max_move


def refit_factor(
    which: int,
    factors: tuple[np.ndarray, np.ndarray, np.ndarray],
    m: int,
    k: int,
    n: int,
) -> np.ndarray:
    """Exact least-squares refit of one factor given the other two.

    ``which`` is 0, 1 or 2 for U, V, W.  The CP objective is linear in each
    single factor, so this is one ``lstsq`` on the matching tensor unfolding.
    """
    from repro.search.als import khatri_rao  # local import to avoid a cycle

    T = matmul_tensor(m, k, n)
    U, V, W = factors
    if which == 0:
        Z = khatri_rao(V, W)
        T1 = T.reshape(T.shape[0], -1)
        return np.linalg.lstsq(Z, T1.T, rcond=None)[0].T
    if which == 1:
        Z = khatri_rao(U, W)
        T2 = T.transpose(1, 0, 2).reshape(T.shape[1], -1)
        return np.linalg.lstsq(Z, T2.T, rcond=None)[0].T
    Z = khatri_rao(U, V)
    T3 = T.transpose(2, 0, 1).reshape(T.shape[2], -1)
    return np.linalg.lstsq(Z, T3.T, rcond=None)[0].T


def _exact_gate(U, V, W, m, k, n):
    if not verify_brent(U, V, W, m, k, n, tol=1e-9):
        return None
    if not verify_brent_exact(U, V, W, m, k, n):
        return None
    return U, V, W


def discretize(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    m: int,
    k: int,
    n: int,
    candidates=DEFAULT_CANDIDATES,
    max_rounds: int = 6,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Turn a float CP solution into an exact discrete triple, if possible.

    Strategy: normalize the gauge, then for each ordering of the three
    factors snap two of them and refit the third exactly; finally snap the
    refit factor as well.  A short alternating projection loop (snap one
    factor, ALS-refit the other two) is attempted as a fallback.  Returns
    ``None`` when no attempt passes exact verification.
    """
    Un, Vn, Wn = normalize_columns(U, V, W)
    base = (Un, Vn, Wn)

    # Attempt 1: snap-all.
    s = tuple(snap(X, candidates)[0] for X in base)
    got = _exact_gate(*s, m, k, n)
    if got is not None:
        return got

    # Attempt 2: snap two, refit + snap the third, all three choices.
    for free in (2, 1, 0):
        fs = [None, None, None]
        for i in range(3):
            if i != free:
                fs[i] = snap(base[i], candidates)[0]
            else:
                fs[i] = base[i]
        fs[free] = refit_factor(free, tuple(fs), m, k, n)
        fs[free] = snap(fs[free], candidates)[0]
        got = _exact_gate(fs[0], fs[1], fs[2], m, k, n)
        if got is not None:
            return got

    # Attempt 3: alternating projection — snap one factor, exactly refit the
    # other two (a few passes), renormalizing the gauge between rounds.
    cur = [X.copy() for X in base]
    for _ in range(max_rounds):
        for lock in range(3):
            cur[lock] = snap(cur[lock], candidates)[0]
            for free in range(3):
                if free == lock:
                    continue
                cur[free] = refit_factor(free, tuple(cur), m, k, n)
            s = tuple(snap(X, candidates)[0] for X in cur)
            got = _exact_gate(*s, m, k, n)
            if got is not None:
                return got
        cur = list(normalize_columns(*cur))
    return None
