"""repro — reproduction of *Generating Families of Practical Fast Matrix
Multiplication Algorithms* (Huang, Rice, Matthews, van de Geijn, IPPS 2017).

Quickstart
----------
>>> import numpy as np
>>> from repro import multiply
>>> A, B = np.random.rand(128, 96), np.random.rand(96, 160)
>>> C = multiply(A, B, algorithm="strassen", levels=2)
>>> np.allclose(C, A @ B)
True

Public surface
--------------
* :func:`multiply` / :func:`multiply_batched` — one-call FMM (any catalog
  algorithm, levels, mixed per-level schedule such as
  ``"strassen@2,smirnov333@1"``; ``engine="auto"`` for model-guided
  dispatch).
* :class:`Schedule` / :func:`schedule_signature` — first-class
  heterogeneous per-level schedules and their canonical strings.
* :func:`get_algorithm` / :func:`fig2_family` — the generated family
  (rectangular ``<m,k,n>`` entries included; see ``docs/algorithms.md``).
* :class:`FMMAlgorithm` / :class:`MultiLevelFMM` — the ``[[U,V,W]]`` algebra.
* :class:`DirectEngine` / :class:`BlockedEngine` — execution engines, thin
  clients of the task-graph runtime over the cached :class:`CompiledPlan`
  artifact (:mod:`repro.core.compile`; inspect the cache with
  :func:`plan_cache_info` / :func:`plan_cache_clear`).
* :func:`execute_plan` / :func:`lower_plan` — the variant-aware parallel
  runtime (:mod:`repro.core.runtime`): staged, streaming-fused or
  out-of-core tiled task DAGs (``fusion=`` knob; tiled streams
  mmap-spilled slabs through a bounded RAM window priced by
  :func:`predict_tile_window_bytes`) + reusable worker pools + arena
  (:func:`arena_stats` / :func:`arena_clear`); every execution publishes
  an :class:`ExecutionReport` with measured peak workspace bytes
  (:func:`last_report`).
* :func:`measured_scaling_curve` / :func:`pick_threads` — measured vs
  modeled multicore scaling (:mod:`repro.core.parallel`).
* :func:`predict_fmm` / :func:`predict_gemm` — the Fig.-5 performance model.
* :func:`select` — model-guided poly-algorithm selection (Fig. 8).
* :func:`tune_problem` / :func:`tune_sweep` / :class:`WisdomStore` —
  empirical autotuning with persistent wisdom (:mod:`repro.tune`);
  ``multiply(engine="auto", tune="readonly")`` dispatches on it.
* :mod:`repro.kernels` — pluggable leaf-kernel backends behind the
  runtime (:func:`backend_names` / :func:`backend_infos` /
  :class:`LeafBackend`): the reference numpy interpreter, per-plan
  ``exec``-compiled specialized kernels, and an optional numba JIT
  wrapper; ``multiply(backend=...)`` selects one, ``engine="auto"``
  prices and tunes the choice.
* :func:`set_runtime_tunables` / :func:`runtime_tunables` — per-machine
  runtime knobs (fused group size, auto-fusion threshold, serve
  coalescing window/batch cap); wisdom files carry measured overrides
  (:func:`tune_fused_group`).
* :class:`MultiplyService` / :class:`JobHandle` — the async serving
  layer (:mod:`repro.serve`): ``submit(A, B, **spec)`` returns a job
  handle, a scheduler thread coalesces same-plan requests into batched
  executions, and a byte budget provides admission control
  (:class:`ServiceOverloadedError`; policy knob ``queue`` / ``reject``
  / ``serial``).  ``repro serve`` / ``repro jobs`` drive it from the
  shell.
* :mod:`repro.obs` — the observability layer: span tracing with Chrome
  trace-event export (:mod:`repro.obs.trace`), the process-wide metrics
  registry (:func:`metrics_snapshot`), a bounded ExecutionReport history
  with per-plan aggregation (:func:`report_history` /
  :func:`report_stats`), and namespaced stdlib logging
  (``REPRO_LOG_LEVEL`` attaches a stderr handler).  ``repro trace run``
  and ``repro stats`` surface it from the shell;
  :func:`seed_wisdom_from_observations` turns the history into wisdom.
* :func:`build_plan` / :func:`generate_source` — the code generator.
"""

from repro.algorithms.catalog import (
    FIG2_SHAPES,
    NAMED_ALGORITHMS,
    CatalogEntry,
    catalog_summary,
    fig2_family,
    get_algorithm,
    get_entry,
    known_algorithm_names,
)
from repro.algorithms.classical import classical
from repro.algorithms.strassen import strassen, winograd
from repro.blis.params import BlockingParams
from repro.core.codegen import compile_plan, generate_source
from repro.core.compile import (
    CompiledPlan,
    plan_cache_clear,
    plan_cache_info,
)
from repro.core.executor import (
    BlockedEngine,
    DirectEngine,
    multiply,
    multiply_batched,
    resolve_levels,
)
from repro.core.fmm import FMMAlgorithm
from repro.core.kronecker import MultiLevelFMM
from repro.core.parallel import measured_scaling_curve, pick_threads, scaling_curve
from repro.core.plan import build_plan
from repro.core.runtime import (
    ExecutionReport,
    TaskGraph,
    execute_plan,
    get_pool,
    last_report,
    lower_plan,
)
from repro.core.selection import Candidate, auto_config, hybrid_shapes_for, select
from repro.core.spec import (
    FUSION_MODES,
    VARIANTS,
    Schedule,
    normalize_backend,
    normalize_fusion,
    normalize_schedule,
    normalize_spec,
    normalize_threads,
    normalize_tune,
    normalize_variant,
    runtime_tunables,
    schedule_signature,
    set_runtime_tunables,
)
from repro.kernels import (
    LeafBackend,
    available_backends,
    backend_infos,
    backend_names,
    get_backend,
)
from repro.core.workspace import arena_clear, arena_stats
from repro.model.machines import MachineParams, generic_laptop, ivy_bridge_e5_2680_v2
from repro.model.perfmodel import (
    calibrate_lambda,
    effective_gflops,
    predict_fmm,
    predict_fusion_savings,
    predict_gemm,
    predict_tile_window_bytes,
    predict_workspace_bytes,
)
from repro.obs import trace
from repro.obs.metrics import snapshot as metrics_snapshot
from repro.obs.reports import (
    aggregate as report_stats,
    recent as report_history,
)
from repro.serve import (
    JobCancelledError,
    JobHandle,
    MultiplyService,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.tune import (
    MeasureConfig,
    Measurement,
    TuneReport,
    WisdomStore,
    calibrate_machine,
    default_store,
    measure_candidate,
    observed_measurements,
    seed_wisdom_from_observations,
    set_default_store,
    tune_fused_group,
    tune_problem,
    tune_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "multiply",
    "multiply_batched",
    "CompiledPlan",
    "plan_cache_info",
    "plan_cache_clear",
    "Schedule",
    "normalize_schedule",
    "normalize_spec",
    "normalize_threads",
    "normalize_tune",
    "normalize_variant",
    "normalize_fusion",
    "VARIANTS",
    "FUSION_MODES",
    "schedule_signature",
    "hybrid_shapes_for",
    "NAMED_ALGORITHMS",
    "known_algorithm_names",
    "execute_plan",
    "lower_plan",
    "last_report",
    "ExecutionReport",
    "TaskGraph",
    "get_pool",
    "arena_stats",
    "arena_clear",
    "scaling_curve",
    "measured_scaling_curve",
    "pick_threads",
    "auto_config",
    "get_algorithm",
    "get_entry",
    "fig2_family",
    "catalog_summary",
    "FIG2_SHAPES",
    "CatalogEntry",
    "classical",
    "strassen",
    "winograd",
    "FMMAlgorithm",
    "MultiLevelFMM",
    "DirectEngine",
    "BlockedEngine",
    "BlockingParams",
    "resolve_levels",
    "MachineParams",
    "ivy_bridge_e5_2680_v2",
    "generic_laptop",
    "predict_fmm",
    "predict_gemm",
    "predict_tile_window_bytes",
    "predict_workspace_bytes",
    "predict_fusion_savings",
    "effective_gflops",
    "calibrate_lambda",
    "select",
    "Candidate",
    "MeasureConfig",
    "Measurement",
    "measure_candidate",
    "WisdomStore",
    "default_store",
    "set_default_store",
    "TuneReport",
    "tune_problem",
    "tune_sweep",
    "tune_fused_group",
    "calibrate_machine",
    "trace",
    "metrics_snapshot",
    "report_history",
    "report_stats",
    "observed_measurements",
    "seed_wisdom_from_observations",
    "LeafBackend",
    "available_backends",
    "backend_infos",
    "backend_names",
    "get_backend",
    "normalize_backend",
    "runtime_tunables",
    "set_runtime_tunables",
    "MultiplyService",
    "JobHandle",
    "JobCancelledError",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "build_plan",
    "generate_source",
    "compile_plan",
    "__version__",
]
